package mrsim

import (
	"fmt"
	"sort"
	"strings"

	"mrmicro/internal/mapreduce"
	"mrmicro/internal/sim"
)

// TaskEvent records one task attempt's execution, the simulated analogue
// of a Hadoop job-history entry.
type TaskEvent struct {
	Type      mapreduce.TaskType
	Index     int
	Attempt   int
	Node      int // node index that ran the attempt
	Start     sim.Time
	End       sim.Time
	Succeeded bool
	// For reducers: when the copy phase finished (zero for maps).
	ShuffleDone sim.Time
}

// ID formats the attempt Hadoop-style.
func (e TaskEvent) ID() string {
	return fmt.Sprintf("%s_%06d_%d", e.Type, e.Index, e.Attempt)
}

// logTask appends an event to the report's history.
func (js *JobState) logTask(e TaskEvent) {
	js.Report.Tasks = append(js.Report.Tasks, e)
}

// TasksOf returns the job's task events filtered by type, ordered by start
// time (stable on index for ties).
func (r *Report) TasksOf(t mapreduce.TaskType) []TaskEvent {
	var out []TaskEvent
	for _, e := range r.Tasks {
		if e.Type == t {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// RenderTimeline draws the job's task attempts as a text Gantt chart:
// one row per attempt, bars scaled to the job duration. Failed attempts
// render with x's, shuffle phases (for reducers) with dots.
func (r *Report) RenderTimeline(width int) string {
	if width <= 20 {
		width = 80
	}
	span := float64(r.JobEnd - r.JobStart)
	if span <= 0 || len(r.Tasks) == 0 {
		return "(no task events)\n"
	}
	cols := float64(width)
	pos := func(t sim.Time) int {
		c := int(float64(t-r.JobStart) / span * cols)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "task timeline (%.1fs total, %d attempts)\n", span/1e9, len(r.Tasks))
	events := append([]TaskEvent(nil), r.Tasks...)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].ID() < events[j].ID()
	})
	for _, e := range events {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		s, en := pos(e.Start), pos(e.End)
		fill := byte('#')
		if !e.Succeeded {
			fill = 'x'
		}
		for i := s; i <= en; i++ {
			row[i] = fill
		}
		if e.ShuffleDone > 0 && e.Succeeded {
			sd := pos(e.ShuffleDone)
			for i := s; i <= sd && i < width; i++ {
				row[i] = '.'
			}
		}
		fmt.Fprintf(&b, "%-16s n%-2d |%s|\n", e.ID(), e.Node, row)
	}
	return b.String()
}
