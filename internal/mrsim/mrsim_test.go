package mrsim

import (
	"testing"
	"testing/quick"

	"mrmicro/internal/cluster"
	"mrmicro/internal/costmodel"
	"mrmicro/internal/mapreduce"
	"mrmicro/internal/netsim"
	"mrmicro/internal/sim"
)

func uniform(maps, reduces int, recs, bytesPerRec int64) *JobSpec {
	parts := make([][]SegSpec, maps)
	for m := range parts {
		parts[m] = make([]SegSpec, reduces)
		for r := range parts[m] {
			parts[m][r] = SegSpec{Records: recs, Bytes: recs * bytesPerRec}
		}
	}
	return &JobSpec{Name: "u", Conf: mapreduce.NewConf(), Partitions: parts, TypeFactor: 1}
}

func TestChunkOf(t *testing.T) {
	cases := []struct {
		total    int64
		of       int
		wantLast int64
	}{
		{100, 1, 100},
		{100, 3, 100 - 2*33},
		{7, 4, 7 - 3*1},
		{0, 5, 0},
	}
	for _, c := range cases {
		var sum int64
		for i := 0; i < c.of; i++ {
			sum += ChunkOf(c.total, i, c.of)
		}
		if sum != c.total {
			t.Errorf("ChunkOf(%d,*,%d) sums to %d", c.total, c.of, sum)
		}
		if got := ChunkOf(c.total, c.of-1, c.of); got != c.wantLast {
			t.Errorf("last chunk of (%d,%d) = %d, want %d", c.total, c.of, got, c.wantLast)
		}
	}
	// Property: chunks conserve the total and are non-negative.
	f := func(total int64, of8 uint8) bool {
		if total < 0 {
			total = -total
		}
		of := int(of8%16) + 1
		var sum int64
		for i := 0; i < of; i++ {
			c := ChunkOf(total, i, of)
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlowstartTarget(t *testing.T) {
	spec := uniform(40, 2, 1, 1)
	e := sim.NewEngine()
	c := cluster.ClusterA(e, 1, netsim.OneGigE)
	js := NewJobState(spec, c, costmodel.Default())
	if got := js.SlowstartTarget(); got != 2 { // 0.05 * 40
		t.Errorf("slowstart = %d, want 2", got)
	}
	spec.Conf.SetFloat(mapreduce.ConfSlowstartMaps, 1.0)
	if got := js.SlowstartTarget(); got != 40 {
		t.Errorf("slowstart = %d, want 40", got)
	}
	spec.Conf.SetFloat(mapreduce.ConfSlowstartMaps, 0.0)
	if got := js.SlowstartTarget(); got != 1 {
		t.Errorf("slowstart floor = %d, want 1", got)
	}
}

func TestSpillFeedPublish(t *testing.T) {
	spec := uniform(2, 2, 10, 10)
	e := sim.NewEngine()
	c := cluster.ClusterA(e, 1, netsim.OneGigE)
	js := NewJobState(spec, c, costmodel.Default())
	js.PublishSpill(0, 0, 3, 2)
	js.PublishSpill(0, 1, 3, 2)
	if len(js.SpillFeed) != 2 {
		t.Fatalf("feed length = %d", len(js.SpillFeed))
	}
	if js.SpillFeed[1] != (SpillEvent{Map: 0, Index: 1, Of: 3, Node: 2}) {
		t.Errorf("event = %+v", js.SpillFeed[1])
	}
}

func TestFinishFillsCounters(t *testing.T) {
	spec := uniform(2, 2, 100, 10)
	e := sim.NewEngine()
	c := cluster.ClusterA(e, 1, netsim.OneGigE)
	js := NewJobState(spec, c, costmodel.Default())
	js.Report.ShuffleBytes = 4000
	js.Finish(sim.DurationOf(5))
	if !js.Finished || !js.Done.Done() {
		t.Error("Finish did not finalize")
	}
	ctr := js.Report.Counters
	if ctr.Task(mapreduce.CtrMapOutputRecords) != 400 {
		t.Errorf("map output records = %d", ctr.Task(mapreduce.CtrMapOutputRecords))
	}
	if ctr.Task(mapreduce.CtrReduceShuffleBytes) != 4000 {
		t.Errorf("shuffle bytes = %d", ctr.Task(mapreduce.CtrReduceShuffleBytes))
	}
}

func TestStockShuffleName(t *testing.T) {
	if (StockShuffle{}).Name() != "hadoop-tcp" || (StockShuffle{}).EagerSpills() {
		t.Error("stock shuffle identity wrong")
	}
}

func TestReportPhaseHelpers(t *testing.T) {
	r := &Report{
		JobStart:    sim.DurationOf(10),
		MapPhaseEnd: sim.DurationOf(60),
		JobEnd:      sim.DurationOf(110),
	}
	if r.ExecutionSeconds() != 100 {
		t.Errorf("exec = %v", r.ExecutionSeconds())
	}
	if r.MapPhaseSeconds() != 50 {
		t.Errorf("map = %v", r.MapPhaseSeconds())
	}
	if r.ReduceTailSeconds() != 50 {
		t.Errorf("tail = %v", r.ReduceTailSeconds())
	}
}
