// Package mrsim holds the engine-neutral pieces of the simulated MapReduce
// runtimes: the resolved JobSpec (the per-(map, reduce) record/byte matrix
// a job shuffles), the Report, and the task execution bodies shared by the
// MRv1 (JobTracker/slots) and YARN (RM/containers) schedulers.
//
// Task execution follows Hadoop's phase structure — map generate/collect,
// buffer sort + multi-spill, on-disk merge passes, slow-start shuffle with
// parallel fetchers, reduce-side in-memory merge with disk overflow, final
// merge, reduce function — with costs charged to the simulated cluster's
// cores, page-cache/disks and network fabric.
//
// The engines do not rerun user code: the microbench layer runs the real
// partitioner offline and hands them a JobSpec with the exact intermediate
// data matrix the real job would produce.
package mrsim

import (
	"fmt"

	"mrmicro/internal/faultinject"
	"mrmicro/internal/mapreduce"
	"mrmicro/internal/sim"
)

// SegSpec is the intermediate data one map task produces for one reducer.
type SegSpec struct {
	Records int64
	Bytes   int64 // serialized IFile bytes (framing included)
}

// JobSpec is a fully resolved simulated job: the intermediate-data matrix
// plus configuration.
type JobSpec struct {
	Name string
	Conf *mapreduce.Conf

	// Partitions[m][r] is what map m shuffles to reducer r, produced by
	// running the job's real partitioner over its real key sequence.
	Partitions [][]SegSpec

	// TypeFactor scales per-record/per-byte CPU costs for the intermediate
	// data type (1.0 = BytesWritable; Text pays UTF-8 validation etc.).
	TypeFactor float64

	// PostCombine[m][r], when non-nil, is what map m actually ships to
	// reducer r after the map-side combiner collapsed each key group —
	// produced by counting distinct keys per partition with the same real
	// partitioner run that fills Partitions. Spill writes, merges and the
	// shuffle move these records/bytes; Partitions keeps the pre-combine
	// matrix for MAP_OUTPUT_* accounting. Nil means no combiner.
	PostCombine [][]SegSpec

	// MapOutputRawBytes is the job's total raw map-output payload (key+value
	// serialization without IFile record framing). The real executor's
	// MAP_OUTPUT_BYTES counter is raw bytes while Partitions[][].Bytes is
	// framed wire bytes; carrying both lets the simulated engines report
	// counters bit-identical to localrun's. Zero means unknown, in which
	// case counters fall back to TotalShuffleBytes.
	MapOutputRawBytes int64

	// MapInputRecords / MapInputBytes are the real input's totals, set by
	// spec builders that know them (the workload path runs the real record
	// readers). They exist so the simulated engines' MAP_INPUT_* counters
	// match localrun's exactly. Zero MapInputRecords means the NullInput
	// convention applies: one dummy record per map, no input bytes.
	MapInputRecords int64
	MapInputBytes   int64

	// Shuffle overrides the reducer copy-phase strategy; nil selects the
	// stock Hadoop TCP shuffle (StockShuffle).
	Shuffle ShufflePlugin

	// Plan is the shared fault specification: the same type localrun's real
	// executor consumes, so one fault config drives both the simulated and
	// the real engines. Promoted fields keep the historical spelling
	// (spec.MapFailures = ... : task index -> attempts that die before one
	// succeeds) working; rates add seeded probabilistic failures. Schedulers
	// re-queue failed attempts, as Hadoop does.
	faultinject.Plan
}

// Validate checks internal consistency.
func (s *JobSpec) Validate() error {
	if len(s.Partitions) == 0 {
		return fmt.Errorf("mrsim: job %q has no map tasks", s.Name)
	}
	nr := len(s.Partitions[0])
	if nr == 0 {
		return fmt.Errorf("mrsim: job %q has no reduce tasks", s.Name)
	}
	for m, row := range s.Partitions {
		if len(row) != nr {
			return fmt.Errorf("mrsim: job %q: map %d has %d partitions, want %d", s.Name, m, len(row), nr)
		}
		for r, seg := range row {
			if seg.Records < 0 || seg.Bytes < 0 {
				return fmt.Errorf("mrsim: job %q: negative segment at [%d][%d]", s.Name, m, r)
			}
		}
	}
	if s.PostCombine != nil {
		if len(s.PostCombine) != len(s.Partitions) {
			return fmt.Errorf("mrsim: job %q: PostCombine has %d rows, want %d", s.Name, len(s.PostCombine), len(s.Partitions))
		}
		for m, row := range s.PostCombine {
			if len(row) != nr {
				return fmt.Errorf("mrsim: job %q: PostCombine map %d has %d partitions, want %d", s.Name, m, len(row), nr)
			}
			for r, seg := range row {
				if seg.Records < 0 || seg.Bytes < 0 {
					return fmt.Errorf("mrsim: job %q: negative post-combine segment at [%d][%d]", s.Name, m, r)
				}
				if seg.Records > s.Partitions[m][r].Records || seg.Bytes > s.Partitions[m][r].Bytes {
					return fmt.Errorf("mrsim: job %q: post-combine segment [%d][%d] larger than its input", s.Name, m, r)
				}
			}
		}
	}
	if s.TypeFactor <= 0 {
		s.TypeFactor = 1.0
	}
	if s.Conf == nil {
		s.Conf = mapreduce.NewConf()
	}
	return nil
}

// NumMaps returns the map task count.
func (s *JobSpec) NumMaps() int { return len(s.Partitions) }

// NumReduces returns the reduce task count.
func (s *JobSpec) NumReduces() int { return len(s.Partitions[0]) }

// MapRecords returns map m's total output records.
func (s *JobSpec) MapRecords(m int) int64 {
	var n int64
	for _, seg := range s.Partitions[m] {
		n += seg.Records
	}
	return n
}

// MapBytes returns map m's total output bytes.
func (s *JobSpec) MapBytes(m int) int64 {
	var n int64
	for _, seg := range s.Partitions[m] {
		n += seg.Bytes
	}
	return n
}

// ReduceRecords returns reducer r's total input records.
func (s *JobSpec) ReduceRecords(r int) int64 {
	var n int64
	for m := range s.Partitions {
		n += s.Partitions[m][r].Records
	}
	return n
}

// ReduceBytes returns reducer r's total input bytes.
func (s *JobSpec) ReduceBytes(r int) int64 {
	var n int64
	for m := range s.Partitions {
		n += s.Partitions[m][r].Bytes
	}
	return n
}

// Combining reports whether a map-side combiner collapses the shuffled
// data (PostCombine matrix present).
func (s *JobSpec) Combining() bool { return s.PostCombine != nil }

// ShuffleSeg returns the segment map m actually ships to reducer r: the
// post-combine entry when a combiner runs, else the raw partition.
func (s *JobSpec) ShuffleSeg(m, r int) SegSpec {
	if s.PostCombine != nil {
		return s.PostCombine[m][r]
	}
	return s.Partitions[m][r]
}

// MapShuffleRecords returns map m's output records after any combining.
func (s *JobSpec) MapShuffleRecords(m int) int64 {
	var n int64
	for r := range s.Partitions[m] {
		n += s.ShuffleSeg(m, r).Records
	}
	return n
}

// MapShuffleBytes returns map m's output bytes after any combining.
func (s *JobSpec) MapShuffleBytes(m int) int64 {
	var n int64
	for r := range s.Partitions[m] {
		n += s.ShuffleSeg(m, r).Bytes
	}
	return n
}

// ReduceShuffleRecords returns reducer r's input records after any
// combining — what actually crosses the wire and feeds the reduce merge.
func (s *JobSpec) ReduceShuffleRecords(r int) int64 {
	var n int64
	for m := range s.Partitions {
		n += s.ShuffleSeg(m, r).Records
	}
	return n
}

// ReduceShuffleBytes returns reducer r's input bytes after any combining.
func (s *JobSpec) ReduceShuffleBytes(r int) int64 {
	var n int64
	for m := range s.Partitions {
		n += s.ShuffleSeg(m, r).Bytes
	}
	return n
}

// TotalShuffleBytes returns the job's intermediate data volume.
func (s *JobSpec) TotalShuffleBytes() int64 {
	var n int64
	for m := range s.Partitions {
		n += s.MapBytes(m)
	}
	return n
}

// TotalRecords returns the job's intermediate record count.
func (s *JobSpec) TotalRecords() int64 {
	var n int64
	for m := range s.Partitions {
		n += s.MapRecords(m)
	}
	return n
}

// Report is the outcome of one simulated job.
type Report struct {
	JobStart    sim.Time
	JobEnd      sim.Time
	MapPhaseEnd sim.Time   // last map task completion
	ShuffleEnd  sim.Time   // last reducer finished copying
	ReduceEnds  []sim.Time // per-reducer completion

	ShuffleBytes int64
	Counters     *mapreduce.Counters

	// Tasks is the job history: one event per task attempt.
	Tasks []TaskEvent
}

// ExecutionSeconds is the paper's metric: total job execution time.
func (r *Report) ExecutionSeconds() float64 { return (r.JobEnd - r.JobStart).Seconds() }

// MapPhaseSeconds is the time from job start to the last map completion.
func (r *Report) MapPhaseSeconds() float64 { return (r.MapPhaseEnd - r.JobStart).Seconds() }

// ReduceTailSeconds is the exposed time after the last map until job end.
func (r *Report) ReduceTailSeconds() float64 { return (r.JobEnd - r.MapPhaseEnd).Seconds() }
