package mrsim

import (
	"mrmicro/internal/cluster"
	"mrmicro/internal/costmodel"
	"mrmicro/internal/kvbuf"
	"mrmicro/internal/mapreduce"
	"mrmicro/internal/sim"
)

// RunMapTask executes one map attempt on node: startup, record
// generation/collection, buffer sorts + spills, and the multi-pass on-disk
// merge to the final map output file. onDone(ok) runs when the attempt
// ends: schedulers free their slot/container there and re-queue the task
// when ok is false (injected fault). Speculative duplicate attempts are
// deduplicated: only the first completion counts.
func (js *JobState) RunMapTask(p *sim.Proc, node *cluster.Node, idx int, onDone func(ok bool)) {
	m := js.Model
	spec := js.Spec
	attempt := js.MapAttempts[idx]
	js.MapAttempts[idx]++
	if attempt == 0 {
		js.MapStarted[idx] = p.Now()
	}
	started := p.Now()

	p.Sleep(sim.DurationOf(m.TaskStartup))

	records := spec.MapRecords(idx)
	bytes := spec.MapBytes(idx)

	// Map function + collect path: per-record and per-byte CPU.
	cpu := (float64(records)*m.MapRecordCPU + float64(bytes)*m.MapByteCPU) * spec.TypeFactor
	if spec.FailMap(idx, attempt) {
		// The attempt dies partway through the map function; the work is
		// wasted and the scheduler re-queues the task.
		node.Compute(p, cpu/2)
		js.FailedAttempts++
		js.logTask(TaskEvent{Type: mapreduce.TaskMap, Index: idx, Attempt: attempt, Node: node.Index, Start: started, End: p.Now()})
		if onDone != nil {
			onDone(false)
		}
		return
	}
	// Combine and codec CPU shares (the post-combine matrix is what spills,
	// merges, and the shuffle move).
	outRecs, outBytes := records, bytes
	combineCPU := 0.0
	if spec.Combining() {
		combineCPU = float64(records) * m.CombineRecordCPU * spec.TypeFactor
		outRecs = spec.MapShuffleRecords(idx)
		outBytes = spec.MapShuffleBytes(idx)
	}
	wf := js.WireFactor()
	compressCPU := 0.0
	if wf < 1 {
		compressCPU = float64(outBytes) * m.CompressCPU
	}

	// Sort + spill: the buffer fills with raw collect output (combining
	// happens on the way out), so the spill count follows pre-combine bytes
	// while each spill writes its combined share. Both engines derive the
	// trigger from the shared cost-model formula.
	spillBytes := costmodel.SpillTriggerBytes(spec.Conf)
	numSpills := int((bytes + spillBytes - 1) / spillBytes)
	if numSpills < 1 {
		numSpills = 1
	}
	recsPerSpill := outRecs / int64(numSpills)
	bytesPerSpill := outBytes / int64(numSpills)
	factor := spec.Conf.IOSortFactor()
	eager := spec.Shuffle != nil && spec.Shuffle.EagerSpills()
	// With speculation, only one attempt may feed the spill stream.
	publisher := eager && !js.spillClaimed(idx)

	if spec.Conf.SpillOverlap() && numSpills > 1 {
		// Background SpillThread: collection and spilling run as separate
		// procs contending for the node's cores, so the overlap win appears
		// only where spare cores exist — a 1-core node serializes them.
		js.runMapSpillsOverlapped(p, node, idx, cpu+combineCPU+compressCPU,
			recsPerSpill, bytesPerSpill, outRecs, outBytes, numSpills, factor, wf, eager, publisher)
	} else {
		// Synchronous path: every spill stalls the mapper for its full
		// sort+write, then the multi-pass merge runs after the last spill.
		node.Compute(p, cpu)
		if combineCPU > 0 {
			node.Compute(p, combineCPU)
		}
		if compressCPU > 0 {
			node.Compute(p, compressCPU)
		}
		for s := 0; s < numSpills; s++ {
			node.Compute(p, m.SortCPU(recsPerSpill)*spec.TypeFactor)
			if w := int64(float64(bytesPerSpill) * wf); w > 0 {
				node.Store.Write(p, w)
			}
			if publisher {
				js.PublishSpill(idx, s, numSpills, node.Index)
			}
		}

		// Merge spills into the single map output file (skipped for one
		// spill: Hadoop renames it in place, and skipped entirely for
		// eager-spill shuffles, which serve the raw spills).
		if numSpills > 1 && !eager {
			js.mapFinalMerge(p, node, numSpills, factor, recsPerSpill, bytesPerSpill, outRecs, outBytes, wf)
		}
	}

	js.logTask(TaskEvent{Type: mapreduce.TaskMap, Index: idx, Attempt: attempt, Node: node.Index, Start: started, End: p.Now(), Succeeded: true})
	// Report completion; a speculative duplicate that lost only frees its
	// slot.
	if js.MapCompleted[idx] {
		if onDone != nil {
			onDone(true)
		}
		return
	}
	js.MapCompleted[idx] = true
	js.MapLoc[idx] = node.Index // winner's location serves the fetches
	js.MapRuntimeSum += (p.Now() - started).Seconds()
	js.CompletedMaps = append(js.CompletedMaps, idx)
	js.MapsDone++
	if js.MapsDone == spec.NumMaps() {
		js.Report.MapPhaseEnd = p.Now()
	}
	if onDone != nil {
		onDone(true)
	}
	js.MapCompletion.Broadcast()
	js.AllDone.Done()
}

// mapFinalMerge charges the multi-pass merge of fanIn runs into the single
// map output file: intermediate passes while fanIn exceeds io.sort.factor,
// then the final pass (with the combiner's second chance) that writes the
// output and removes the runs. unit sizes are per-run averages.
func (js *JobState) mapFinalMerge(p *sim.Proc, node *cluster.Node, fanIn, factor int, unitRecs, unitBytes, outRecs, outBytes int64, wf float64) {
	m := js.Model
	spec := js.Spec
	remaining := fanIn
	for _, take := range kvbuf.MergePasses(fanIn, factor) {
		passBytes := unitBytes * int64(take)
		passRecs := unitRecs * int64(take)
		passWire := int64(float64(passBytes) * wf)
		node.Store.Read(p, passWire)
		codec := 0.0
		if wf < 1 {
			codec = float64(passBytes) * (m.DecompressCPU + m.CompressCPU)
		}
		node.Compute(p, m.MergeCPU(passRecs, take)+float64(passBytes)*m.MergeByteCPU+codec)
		node.Store.Write(p, passWire)
		node.Store.Delete(passWire) // merged pass inputs removed
		remaining = remaining - take + 1
	}
	// Final pass writes the single output file and removes the spills.
	wireAll := int64(float64(outBytes) * wf)
	node.Store.Read(p, wireAll)
	codec := 0.0
	if wf < 1 {
		codec = float64(outBytes) * (m.DecompressCPU + m.CompressCPU)
	}
	if spec.Combining() {
		// The merge-side combine pass touches every surviving record.
		node.Compute(p, float64(outRecs)*m.CombineRecordCPU*spec.TypeFactor)
	}
	node.Compute(p, m.MergeCPU(outRecs, remaining)+float64(outBytes)*m.MergeByteCPU+codec)
	node.Store.Write(p, wireAll)
	node.Store.Delete(wireAll)
}

// runMapSpillsOverlapped models the background-SpillThread map task: the
// mapper proc charges collection CPU in per-spill chunks and enqueues each
// sealed buffer for a spiller proc (bounded by mapreduce.map.spill.inflight,
// blocking when collection outruns spilling — the collect stall), while the
// spiller sorts, writes, publishes, and premerges every io.sort.factor
// completed spills into one block. Both procs contend for the node's cores,
// so the wall-clock win is the idle-core overlap, not free work. The bytes
// moved and total CPU charged are identical to the synchronous path — the
// knob moves time, never modelled data.
func (js *JobState) runMapSpillsOverlapped(p *sim.Proc, node *cluster.Node, idx int, collectCPU float64, recsPerSpill, bytesPerSpill, outRecs, outBytes int64, numSpills, factor int, wf float64, eager, publisher bool) {
	m := js.Model
	spec := js.Spec
	inflight := spec.Conf.SpillInflight()

	queued := 0
	closed := false
	cond := sim.NewCond()
	var wg sim.WaitGroup
	wg.Add(1)

	// Fan-in bookkeeping: premerged blocks plus the trailing raw runs are
	// what the mapper's final pass merges. Read only after wg.Wait.
	blocks, rawTail := 0, 0
	js.Cluster.Engine().Go(spec.Name+"/spiller", func(sp *sim.Proc) {
		defer wg.Done()
		done := 0
		for {
			for queued == 0 && !closed {
				cond.Wait(sp)
			}
			if queued == 0 {
				return
			}
			queued--
			cond.Broadcast()
			node.Compute(sp, m.SortCPU(recsPerSpill)*spec.TypeFactor)
			if w := int64(float64(bytesPerSpill) * wf); w > 0 {
				node.Store.Write(sp, w)
			}
			if publisher {
				js.PublishSpill(idx, done, numSpills, node.Index)
			}
			done++
			rawTail++
			if !eager && rawTail == factor && factor >= 2 && done < numSpills {
				// Premerge the trailing factor raw runs into one block while
				// the mapper keeps collecting — the overlapped share of the
				// final merge.
				passBytes := bytesPerSpill * int64(factor)
				passRecs := recsPerSpill * int64(factor)
				passWire := int64(float64(passBytes) * wf)
				node.Store.Read(sp, passWire)
				codec := 0.0
				if wf < 1 {
					codec = float64(passBytes) * (m.DecompressCPU + m.CompressCPU)
				}
				node.Compute(sp, m.MergeCPU(passRecs, factor)+float64(passBytes)*m.MergeByteCPU+codec)
				node.Store.Write(sp, passWire)
				node.Store.Delete(passWire)
				blocks++
				rawTail = 0
			}
		}
	})

	perSpillCollect := collectCPU / float64(numSpills)
	for s := 0; s < numSpills; s++ {
		node.Compute(p, perSpillCollect)
		for queued >= inflight {
			cond.Wait(p) // backpressure: every ring buffer sealed and unspilled
		}
		queued++
		cond.Broadcast()
	}
	closed = true
	cond.Broadcast()
	wg.Wait(p) // drain: only the tail spills expose their latency

	if !eager {
		fanIn := blocks + rawTail
		if fanIn < 1 {
			fanIn = 1
		}
		js.mapFinalMerge(p, node, fanIn, factor, outRecs/int64(fanIn), outBytes/int64(fanIn), outRecs, outBytes, wf)
	}
}

// spillClaimed marks idx's spill stream as owned by the calling attempt;
// the first claimer wins.
func (js *JobState) spillClaimed(idx int) bool {
	if js.spillOwner == nil {
		js.spillOwner = make([]bool, js.Spec.NumMaps())
	}
	if js.spillOwner[idx] {
		return true
	}
	js.spillOwner[idx] = true
	return false
}

// ShuffleResult is what a copy phase leaves for the final merge.
type ShuffleResult struct {
	OnDiskBytes int64
	OnDiskRecs  int64
	OnDiskSegs  int
	InMemSegs   int
	// MergeOverlap is the fraction of final-merge work already performed
	// during the copy phase (pipelined mergers); 0 for stock Hadoop.
	MergeOverlap float64
}

// ShufflePlugin is a reducer's copy-phase strategy. The stock
// implementation mirrors Hadoop's fetch + in-memory merge with disk
// overflow; the rdmashuffle package substitutes the MRoIB design.
type ShufflePlugin interface {
	Name() string
	// EagerSpills reports whether reducers fetch individual map spills as
	// they are produced (MRoIB/HOMR). When true, map tasks publish spill
	// events and skip their final on-disk merge — reducers consume the raw
	// spills directly.
	EagerSpills() bool
	// RunShuffle copies every map's segment for reducer idx to node,
	// blocking p until the copy phase completes.
	RunShuffle(p *sim.Proc, js *JobState, node *cluster.Node, idx int) ShuffleResult
}

// RunReduceTask executes one reduce attempt on node: the copy phase (via
// the job's shuffle plugin), final merge, and the reduce function over
// NullOutputFormat. onDone(ok) mirrors RunMapTask's contract.
func (js *JobState) RunReduceTask(p *sim.Proc, node *cluster.Node, idx int, onDone func(ok bool)) {
	m := js.Model
	spec := js.Spec
	attempt := js.ReduceAttempts[idx]
	js.ReduceAttempts[idx]++
	started := p.Now()

	p.Sleep(sim.DurationOf(m.TaskStartup))
	if spec.FailReduce(idx, attempt) {
		// Dies during task initialization, before any copying.
		js.FailedAttempts++
		js.logTask(TaskEvent{Type: mapreduce.TaskReduce, Index: idx, Attempt: attempt, Node: node.Index, Start: started, End: p.Now()})
		if onDone != nil {
			onDone(false)
		}
		return
	}

	plugin := spec.Shuffle
	if plugin == nil {
		plugin = StockShuffle{}
	}
	res := plugin.RunShuffle(p, js, node, idx)
	js.Report.ShuffleEnd = p.Now() // monotonic: final value is the last reducer's
	shuffleDone := p.Now()

	// Final merge: stream the on-disk runs and the in-memory tail through
	// the reduce-side merger. With a combiner, only the post-combine
	// records/bytes ever reach this side.
	totalRecs := spec.ReduceShuffleRecords(idx)
	totalBytes := spec.ReduceShuffleBytes(idx)
	fanIn := res.OnDiskSegs + res.InMemSegs
	// With an explicit byte budget (the real executor's bounded-pool knob)
	// the run count can exceed io.sort.factor, and the merger pays
	// intermediate disk passes first: each wave re-reads and re-writes the
	// spilled volume while compacting up to factor adjacent runs per group
	// (kvbuf.MergeWave), as localrun's reduceOverInputs does. Without the
	// byte key the single-pass model — and the existing figure calibration —
	// is preserved byte for byte.
	if b := spec.Conf.GetInt(mapreduce.ConfShuffleInputBufBytes, 0); b > 0 {
		factor := spec.Conf.IOSortFactor()
		if factor < 2 {
			factor = 2
		}
		for fanIn > factor {
			node.Store.Read(p, res.OnDiskBytes)
			node.Compute(p, m.MergeCPU(totalRecs, factor)+float64(totalBytes)*m.MergeByteCPU)
			node.Store.Write(p, res.OnDiskBytes)
			fanIn = len(kvbuf.MergeWave(fanIn, factor))
		}
	}
	if res.OnDiskBytes > 0 {
		node.Store.Read(p, res.OnDiskBytes)
		node.Store.Delete(res.OnDiskBytes)
	}
	mergeWork := m.MergeCPU(totalRecs, fanIn) + float64(totalBytes)*m.MergeByteCPU
	node.Compute(p, mergeWork*(1-res.MergeOverlap))

	// Reduce function; NullOutputFormat discards the output.
	node.Compute(p, (float64(totalRecs)*m.ReduceRecordCPU+float64(totalBytes)*m.ReduceByteCPU)*spec.TypeFactor)

	js.logTask(TaskEvent{Type: mapreduce.TaskReduce, Index: idx, Attempt: attempt, Node: node.Index, Start: started, End: p.Now(), Succeeded: true, ShuffleDone: shuffleDone})
	if js.ReduceCompleted[idx] {
		if onDone != nil {
			onDone(true)
		}
		return
	}
	js.ReduceCompleted[idx] = true
	js.Report.ReduceEnds[idx] = p.Now()
	if onDone != nil {
		onDone(true)
	}
	js.AllDone.Done()
}

// StockShuffle is Hadoop's copy phase: parallelcopies fetchers pull
// completed map outputs over the fabric (protocol CPU charged both ends),
// accumulating in the shuffle buffer and merging to disk past the merge
// threshold — the merging fetcher stalls, back-pressuring the copy stream.
type StockShuffle struct{}

// Name identifies the plugin in reports.
func (StockShuffle) Name() string { return "hadoop-tcp" }

// EagerSpills is false: stock Hadoop serves map output only after the map
// completes.
func (StockShuffle) EagerSpills() bool { return false }

type stockState struct {
	next    int // cursor into CompletedMaps
	fetched int
	inMem   struct {
		bytes, recs int64
		segs        int
	}
	res ShuffleResult
}

// RunShuffle implements ShufflePlugin.
func (StockShuffle) RunShuffle(p *sim.Proc, js *JobState, node *cluster.Node, idx int) ShuffleResult {
	st := &stockState{}
	threshold := js.Model.MergeThresholdBytes(js.Spec.Conf)
	var fetchers sim.WaitGroup
	for c := 0; c < js.Spec.Conf.ParallelCopies(); c++ {
		fetchers.Add(1)
		js.Cluster.Engine().Go(js.Spec.Name+"/fetcher", func(p *sim.Proc) {
			defer fetchers.Done()
			for {
				mi, ok := claimNext(p, js, &st.next)
				if !ok {
					return
				}
				fetchOne(p, js, node, idx, mi, threshold, st)
			}
		})
	}
	fetchers.Wait(p)
	if st.fetched != js.Spec.NumMaps() {
		panic("mrsim: reducer finished shuffle without all map outputs")
	}
	st.res.InMemSegs = st.inMem.segs
	return st.res
}

// claimNext returns the next completed-but-unfetched map index, blocking on
// the completion feed; ok=false once every map is claimed.
func claimNext(p *sim.Proc, js *JobState, cursor *int) (int, bool) {
	for {
		if *cursor < len(js.CompletedMaps) {
			mi := js.CompletedMaps[*cursor]
			*cursor++
			return mi, true
		}
		if *cursor >= js.Spec.NumMaps() {
			return 0, false
		}
		js.MapCompletion.Wait(p)
	}
}

func fetchOne(p *sim.Proc, js *JobState, node *cluster.Node, idx, mi int, threshold int64, st *stockState) {
	m := js.Model
	seg := js.Spec.ShuffleSeg(mi, idx)
	if seg.Bytes > 0 {
		wf := js.WireFactor()
		wire := int64(float64(seg.Bytes) * wf)
		src := js.MapLoc[mi]
		if src == node.Index {
			node.Store.Read(p, wire)
		} else {
			js.Cluster.Transfer(p, src, node.Index, wire)
		}
		if wf < 1 {
			// Shuffled data stays compressed in the buffer; the merger pays
			// decompression when it touches it — charged here, where the
			// fetcher thread would block on the codec.
			node.Compute(p, float64(seg.Bytes)*m.DecompressCPU)
		}
		js.Report.ShuffleBytes += wire
		st.inMem.bytes += seg.Bytes
		st.inMem.recs += seg.Records
		st.inMem.segs++
		if st.inMem.bytes >= threshold {
			drainBytes, drainRecs, drainSegs := st.inMem.bytes, st.inMem.recs, st.inMem.segs
			st.inMem.bytes, st.inMem.recs, st.inMem.segs = 0, 0, 0
			node.Compute(p, m.MergeCPU(drainRecs, drainSegs)+float64(drainBytes)*m.MergeByteCPU)
			drainBytes = int64(float64(drainBytes) * js.WireFactor())
			node.Store.Write(p, drainBytes)
			st.res.OnDiskBytes += drainBytes
			st.res.OnDiskRecs += drainRecs
			st.res.OnDiskSegs++
		}
	}
	st.fetched++
}
