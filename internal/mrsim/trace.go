package mrsim

import (
	"encoding/json"
	"fmt"

	"mrmicro/internal/mapreduce"
)

// traceEvent is one Chrome trace-event ("X" = complete event with
// duration). The format is the catapult/about:tracing JSON array, loadable
// in chrome://tracing and Perfetto.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TsUs float64           `json:"ts"`
	DuUs float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace serializes the job history as Chrome trace-event JSON: one
// "process" per cluster node, one complete event per task attempt, with
// reducers split into shuffle and merge+reduce slices. Times are relative
// to job start.
func (r *Report) ChromeTrace() ([]byte, error) {
	var events []traceEvent
	us := func(t float64) float64 { return t / 1e3 } // ns -> µs
	for _, e := range r.Tasks {
		name := e.ID()
		start := us(float64(e.Start - r.JobStart))
		end := us(float64(e.End - r.JobStart))
		cat := "map"
		if e.Type == mapreduce.TaskReduce {
			cat = "reduce"
		}
		args := map[string]string{"succeeded": fmt.Sprint(e.Succeeded)}
		if e.Type == mapreduce.TaskReduce && e.Succeeded && e.ShuffleDone > 0 {
			sd := us(float64(e.ShuffleDone - r.JobStart))
			events = append(events,
				traceEvent{Name: name + "/shuffle", Cat: "shuffle", Ph: "X",
					TsUs: start, DuUs: sd - start, PID: e.Node, TID: tid(e), Args: args},
				traceEvent{Name: name + "/sort+reduce", Cat: cat, Ph: "X",
					TsUs: sd, DuUs: end - sd, PID: e.Node, TID: tid(e), Args: args},
			)
			continue
		}
		events = append(events, traceEvent{
			Name: name, Cat: cat, Ph: "X",
			TsUs: start, DuUs: end - start, PID: e.Node, TID: tid(e), Args: args,
		})
	}
	return json.MarshalIndent(events, "", " ")
}

// tid gives each logical task a stable lane within its node's process row.
func tid(e TaskEvent) int {
	base := e.Index*4 + e.Attempt
	if e.Type == mapreduce.TaskReduce {
		return 100000 + base
	}
	return base
}
