package mrsim

import (
	"mrmicro/internal/cluster"
	"mrmicro/internal/costmodel"
	"mrmicro/internal/mapreduce"
	"mrmicro/internal/sim"
)

// JobState is one job in execution on a simulated cluster. Schedulers
// (mrv1's JobTracker, yarn's ApplicationMaster) decide when and where task
// bodies run; JobState carries the shared execution machinery: the
// completed-map feed reducers fetch from, placement records, phase
// timestamps and counters.
type JobState struct {
	Spec    *JobSpec
	Cluster *cluster.Cluster
	Model   *costmodel.Model

	CompletedMaps []int // map indices in completion order
	MapLoc        []int // node index that ran each map
	MapsDone      int
	MapCompletion sim.Cond // broadcast on every map completion and spill
	AllDone       sim.WaitGroup

	// SpillFeed is the per-spill availability stream consumed by eager
	// (RDMA) shuffle plugins; stock Hadoop reducers ignore it and wait for
	// whole-map completions.
	SpillFeed []SpillEvent

	// Attempt bookkeeping (failure injection + speculative execution).
	MapAttempts     []int  // attempts launched per map task
	ReduceAttempts  []int  // attempts launched per reduce task
	MapCompleted    []bool // first successful completion wins
	ReduceCompleted []bool
	MapStarted      []sim.Time // first-attempt start, for speculation
	MapRuntimeSum   float64    // seconds, over successful completions
	FailedAttempts  int        // total injected-fault attempt deaths
	spillOwner      []bool     // eager-spill stream ownership per map

	Finished bool
	Report   *Report
	Done     *sim.Future
}

// SpillEvent announces that spill Index of Of from map Map is fetchable on
// Node. The node rides along because MapLoc can be overwritten by a later
// (speculative or retried) attempt while eager fetchers are still pulling
// the publisher's spills.
type SpillEvent struct {
	Map   int
	Index int
	Of    int
	Node  int
}

// ChunkOf returns the share of a whole-map segment that one spill of `of`
// carries (the last spill takes the rounding remainder).
func ChunkOf(total int64, index, of int) int64 {
	if of <= 1 {
		return total
	}
	base := total / int64(of)
	if index == of-1 {
		return total - base*int64(of-1)
	}
	return base
}

// PublishSpill appends a spill-availability event and wakes waiting
// fetchers.
func (js *JobState) PublishSpill(mapIdx, index, of, node int) {
	js.SpillFeed = append(js.SpillFeed, SpillEvent{Map: mapIdx, Index: index, Of: of, Node: node})
	js.MapCompletion.Broadcast()
}

// NewJobState prepares execution state for spec on c.
func NewJobState(spec *JobSpec, c *cluster.Cluster, model *costmodel.Model) *JobState {
	return &JobState{
		Spec:            spec,
		Cluster:         c,
		Model:           model,
		MapLoc:          make([]int, spec.NumMaps()),
		MapAttempts:     make([]int, spec.NumMaps()),
		ReduceAttempts:  make([]int, spec.NumReduces()),
		MapCompleted:    make([]bool, spec.NumMaps()),
		ReduceCompleted: make([]bool, spec.NumReduces()),
		MapStarted:      make([]sim.Time, spec.NumMaps()),
		Report: &Report{
			ReduceEnds: make([]sim.Time, spec.NumReduces()),
			Counters:   mapreduce.NewCounters(),
		},
		Done: sim.NewFuture(),
	}
}

// WireFactor returns the modelled intermediate-compression ratio applied
// to shuffled and spilled bytes: 1.0 when mapreduce.map.output.compress is
// off, else mapreduce.map.output.compress.ratio (default 0.5).
func (js *JobState) WireFactor() float64 {
	if !js.Spec.Conf.GetBool(mapreduce.ConfCompressMapOut, false) {
		return 1.0
	}
	r := js.Spec.Conf.GetFloat(mapreduce.ConfCompressRatio, 0.5)
	if r <= 0 || r > 1 {
		r = 0.5
	}
	return r
}

// SlowstartTarget returns the completed-map count reducers wait for.
func (js *JobState) SlowstartTarget() int {
	t := int(js.Spec.Conf.SlowstartMaps() * float64(js.Spec.NumMaps()))
	if t < 1 {
		t = 1
	}
	return t
}

// Finish stamps the job end, derives counters and resolves Done. Schedulers
// call it after AllDone drains and cleanup has been charged.
func (js *JobState) Finish(now sim.Time) {
	js.Report.JobEnd = now
	js.Finished = true
	js.fillCounters()
	js.Done.Set(js.Report)
}

// CleanupIntermediate removes the map output files from their nodes' caches
// (Hadoop's job-cleanup deletion of mapred.local.dir data).
func (js *JobState) CleanupIntermediate() {
	for m := 0; m < js.Spec.NumMaps(); m++ {
		js.Cluster.Node(js.MapLoc[m]).Store.Delete(js.Spec.MapShuffleBytes(m))
	}
}

// fillCounters derives Hadoop-style counters from the spec (the simulated
// engine moves no real records, but the accounting is exact).
func (js *JobState) fillCounters() {
	c := js.Report.Counters
	spec := js.Spec
	inRecs := spec.MapInputRecords
	if inRecs == 0 {
		inRecs = int64(spec.NumMaps()) // NullInput: one dummy split record each
	}
	c.IncrTask(mapreduce.CtrMapInputRecords, inRecs)
	if spec.MapInputBytes > 0 {
		c.IncrTask(mapreduce.CtrMapInputBytes, spec.MapInputBytes)
	}
	c.IncrTask(mapreduce.CtrMapOutputRecords, spec.TotalRecords())
	mob := spec.MapOutputRawBytes
	if mob == 0 {
		mob = spec.TotalShuffleBytes()
	}
	c.IncrTask(mapreduce.CtrMapOutputBytes, mob)
	reduceIn := spec.TotalRecords()
	if spec.Combining() {
		reduceIn = 0
		for r := 0; r < spec.NumReduces(); r++ {
			reduceIn += spec.ReduceShuffleRecords(r)
		}
	}
	c.IncrTask(mapreduce.CtrReduceInputRecords, reduceIn)
	c.IncrTask(mapreduce.CtrShuffledMaps, int64(spec.NumMaps()*spec.NumReduces()))
	c.IncrTask(mapreduce.CtrReduceShuffleBytes, js.Report.ShuffleBytes)
}
