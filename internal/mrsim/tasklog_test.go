package mrsim

import (
	"encoding/json"
	"strings"
	"testing"

	"mrmicro/internal/mapreduce"
	"mrmicro/internal/sim"
)

func TestTaskEventID(t *testing.T) {
	e := TaskEvent{Type: mapreduce.TaskMap, Index: 3, Attempt: 1}
	if e.ID() != "m_000003_1" {
		t.Errorf("id = %s", e.ID())
	}
	r := TaskEvent{Type: mapreduce.TaskReduce, Index: 0, Attempt: 0}
	if r.ID() != "r_000000_0" {
		t.Errorf("id = %s", r.ID())
	}
}

func TestTasksOfFiltersAndSorts(t *testing.T) {
	r := &Report{Tasks: []TaskEvent{
		{Type: mapreduce.TaskReduce, Index: 0, Start: sim.DurationOf(5)},
		{Type: mapreduce.TaskMap, Index: 2, Start: sim.DurationOf(3)},
		{Type: mapreduce.TaskMap, Index: 0, Start: sim.DurationOf(1)},
		{Type: mapreduce.TaskMap, Index: 1, Start: sim.DurationOf(3)},
	}}
	maps := r.TasksOf(mapreduce.TaskMap)
	if len(maps) != 3 {
		t.Fatalf("maps = %d", len(maps))
	}
	if maps[0].Index != 0 || maps[1].Index != 1 || maps[2].Index != 2 {
		t.Errorf("order = %v", maps)
	}
	if len(r.TasksOf(mapreduce.TaskReduce)) != 1 {
		t.Error("reduce filter wrong")
	}
}

func TestRenderTimeline(t *testing.T) {
	r := &Report{
		JobStart: 0,
		JobEnd:   sim.DurationOf(100),
		Tasks: []TaskEvent{
			{Type: mapreduce.TaskMap, Index: 0, Node: 1, Start: 0, End: sim.DurationOf(40), Succeeded: true},
			{Type: mapreduce.TaskMap, Index: 1, Node: 2, Start: 0, End: sim.DurationOf(30)},
			{Type: mapreduce.TaskReduce, Index: 0, Node: 1, Start: sim.DurationOf(10),
				End: sim.DurationOf(95), Succeeded: true, ShuffleDone: sim.DurationOf(60)},
		},
	}
	out := r.RenderTimeline(60)
	if !strings.Contains(out, "m_000000_0") || !strings.Contains(out, "r_000000_0") {
		t.Errorf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no success bars")
	}
	if !strings.Contains(out, "x") {
		t.Error("failed attempt not marked")
	}
	if !strings.Contains(out, ".") {
		t.Error("shuffle phase not marked")
	}
	if !strings.Contains(out, "3 attempts") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	r := &Report{}
	if !strings.Contains(r.RenderTimeline(40), "no task events") {
		t.Error("empty render wrong")
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := &Report{
		JobStart: sim.DurationOf(1),
		JobEnd:   sim.DurationOf(101),
		Tasks: []TaskEvent{
			{Type: mapreduce.TaskMap, Index: 0, Node: 1, Start: sim.DurationOf(1), End: sim.DurationOf(41), Succeeded: true},
			{Type: mapreduce.TaskMap, Index: 1, Node: 2, Start: sim.DurationOf(1), End: sim.DurationOf(31)}, // failed
			{Type: mapreduce.TaskReduce, Index: 0, Node: 1, Start: sim.DurationOf(11),
				End: sim.DurationOf(96), Succeeded: true, ShuffleDone: sim.DurationOf(61)},
		},
	}
	raw, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 map events + reducer split into shuffle + sort/reduce = 4.
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	names := map[string]bool{}
	for _, e := range events {
		names[e["name"].(string)] = true
		if e["ph"] != "X" {
			t.Errorf("phase = %v", e["ph"])
		}
		if e["dur"].(float64) < 0 {
			t.Error("negative duration")
		}
	}
	for _, want := range []string{"m_000000_0", "m_000001_0", "r_000000_0/shuffle", "r_000000_0/sort+reduce"} {
		if !names[want] {
			t.Errorf("missing event %q in %v", want, names)
		}
	}
	// Map 0 starts at ts 0 (relative to job start), runs 40s = 4e7 µs.
	for _, e := range events {
		if e["name"] == "m_000000_0" {
			if e["ts"].(float64) != 0 || e["dur"].(float64) != 40e6 {
				t.Errorf("m0 ts/dur = %v/%v", e["ts"], e["dur"])
			}
		}
	}
}
