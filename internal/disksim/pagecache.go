package disksim

import (
	"mrmicro/internal/sim"
)

// Store models a node's filesystem as Linux actually behaves under
// MapReduce: writes land in the page cache at memory speed and are drained
// to disk by background write-back; writers throttle once dirty data passes
// the dirty limit (vm.dirty_ratio); reads of recently written data hit the
// cache, spilling to the spindles only for the fraction that no longer
// fits.
//
// This is what makes the paper's numbers reproducible: with 24 GB of RAM
// and ~2 GB map outputs, Hadoop's spill/merge traffic is mostly cache-hot,
// so job time is shaped by CPU and the network, not raw spindle bandwidth —
// until the working set outgrows the cache (the paper's 64 GB runs).
type Store struct {
	eng   *sim.Engine
	disks *Array

	// MemBandwidth is the page-cache copy rate (bytes/sec).
	MemBandwidth float64
	// DirtyLimit throttles writers (bytes of un-synced data).
	DirtyLimit int64
	// CacheBytes is how much written data stays readable at memory speed.
	CacheBytes int64

	dirty    int64
	live     int64
	wbOn     []bool // one flusher flag per spindle
	inFlight int64  // claimed by a flusher, not yet on the platter
	progress sim.Cond
}

// writeChunk is the write-back granularity ceiling; the effective chunk is
// capped at a quarter of the dirty limit so throttling and parallel
// flushing behave at any scale.
const writeChunk = 64 << 20

func (s *Store) chunkSize() int64 {
	c := int64(writeChunk)
	if q := s.DirtyLimit / 4; q > 0 && q < c {
		c = q
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NewStore wraps a node's disk array with a page cache sized from the
// node's memory: 20 % dirty limit and 60 % cache residency, the classic
// Linux defaults of the era.
func NewStore(eng *sim.Engine, disks *Array, memBytes int64) *Store {
	return &Store{
		eng:          eng,
		disks:        disks,
		MemBandwidth: 3e9,
		DirtyLimit:   memBytes / 5,
		CacheBytes:   memBytes * 6 / 10,
	}
}

// Dirty returns un-synced bytes (for tests and monitors).
func (s *Store) Dirty() int64 { return s.dirty }

// Live returns bytes of live temp data counted against the cache.
func (s *Store) Live() int64 { return s.live }

// Write buffers n bytes through the page cache, throttling on the dirty
// limit, and accounts them as live data.
func (s *Store) Write(p *sim.Proc, n int64) {
	for n > 0 {
		c := s.chunkSize()
		if c > n {
			c = n
		}
		for s.dirty+c > s.DirtyLimit && s.dirty > 0 {
			s.progress.Wait(p)
		}
		p.Sleep(sim.DurationOf(float64(c) / s.MemBandwidth))
		s.dirty += c
		s.live += c
		s.kickWriteback()
		n -= c
	}
}

// Read charges n bytes: the cache-resident fraction at memory speed, the
// remainder from a spindle (contending with write-back).
func (s *Store) Read(p *sim.Proc, n int64) {
	if n <= 0 {
		return
	}
	frac := 1.0
	if s.live > s.CacheBytes && s.live > 0 {
		frac = float64(s.CacheBytes) / float64(s.live)
	}
	cached := int64(float64(n) * frac)
	if cached > 0 {
		p.Sleep(sim.DurationOf(float64(cached) / s.MemBandwidth))
	}
	if rest := n - cached; rest > 0 {
		s.disks.Pick().Read(p, rest)
	}
}

// Delete drops n bytes of live data (files removed after a merge or at job
// end), freeing cache residency. Deleting a file whose pages are still
// dirty cancels the pending write-back — short-lived spill files routinely
// die in the cache without ever touching a spindle, a first-order effect
// for MapReduce temp I/O. Without per-file tracking, the cancelled amount
// is the deleted bytes scaled by the store-wide dirty fraction.
func (s *Store) Delete(n int64) {
	if n <= 0 {
		return
	}
	if s.live > 0 {
		cancel := int64(float64(n) * float64(s.dirty) / float64(s.live))
		if cancel > s.dirty {
			cancel = s.dirty
		}
		s.dirty -= cancel
		if s.dirty < 0 {
			s.dirty = 0
		}
		s.progress.Broadcast()
	}
	s.live -= n
	if s.live < 0 {
		s.live = 0
	}
}

// Sync blocks p until all dirty data has reached the spindles, including
// chunks already claimed by a flusher.
func (s *Store) Sync(p *sim.Proc) {
	for s.dirty > 0 || s.inFlight > 0 {
		s.progress.Wait(p)
	}
}

// kickWriteback ensures one flusher per spindle is draining (the kernel
// flushes dirty pages across all devices concurrently); a flusher exits
// when the pool empties and is respawned by the next write.
func (s *Store) kickWriteback() {
	if s.wbOn == nil {
		s.wbOn = make([]bool, len(s.disks.Disks()))
	}
	for i, d := range s.disks.Disks() {
		if s.wbOn[i] {
			continue
		}
		s.wbOn[i] = true
		i, d := i, d
		s.eng.Go("writeback", func(p *sim.Proc) {
			for s.dirty > 0 {
				c := s.chunkSize()
				if c > s.dirty {
					c = s.dirty
				}
				s.dirty -= c // claim before the write so flushers split the pool
				s.inFlight += c
				d.Write(p, c)
				s.inFlight -= c
				s.progress.Broadcast()
			}
			s.wbOn[i] = false
		})
	}
}
