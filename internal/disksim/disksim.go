// Package disksim models node-local spinning disks: a seek cost per request
// plus sequential transfer at a fixed rate, with FIFO service per spindle.
// Nodes with several data directories (Hadoop-style JBOD) stripe task I/O
// across disks round-robin, exactly as mapred.local.dir does.
package disksim

import (
	"fmt"

	"mrmicro/internal/sim"
)

// Spec describes one spindle.
type Spec struct {
	ReadBandwidth  float64  // bytes/sec sequential
	WriteBandwidth float64  // bytes/sec sequential
	Seek           sim.Time // per-request positioning cost
}

// HDD7200 approximates the 1 TB 7.2k SATA drives in the paper's Cluster A
// (and the single 80 GB drive per Stampede node in Cluster B).
var HDD7200 = Spec{
	ReadBandwidth:  130e6,
	WriteBandwidth: 115e6,
	Seek:           sim.DurationOf(0.0084),
}

// Disk is a single spindle. Requests are serviced one at a time in FIFO
// order; concurrent requesters queue (head contention), which is what makes
// many concurrent spills slow — a first-order effect in MapReduce.
type Disk struct {
	eng  *sim.Engine
	spec Spec
	srv  *sim.Resource

	readBytes  int64
	writeBytes int64
}

// NewDisk creates a spindle on e.
func NewDisk(e *sim.Engine, name string, spec Spec) *Disk {
	if spec.ReadBandwidth <= 0 || spec.WriteBandwidth <= 0 {
		panic(fmt.Sprintf("disksim: %s: bandwidth must be positive", name))
	}
	return &Disk{eng: e, spec: spec, srv: sim.NewResource(e, name, 1)}
}

// Read performs a sequential read of n bytes, blocking p for seek + transfer
// (plus any queueing behind other requests).
func (d *Disk) Read(p *sim.Proc, n int64) {
	d.io(p, n, d.spec.Seek+sim.DurationOf(float64(n)/d.spec.ReadBandwidth))
	d.readBytes += n
}

// Write performs a sequential write of n bytes.
func (d *Disk) Write(p *sim.Proc, n int64) {
	d.io(p, n, d.spec.Seek+sim.DurationOf(float64(n)/d.spec.WriteBandwidth))
	d.writeBytes += n
}

func (d *Disk) io(p *sim.Proc, n int64, cost sim.Time) {
	if n < 0 {
		panic("disksim: negative I/O size")
	}
	d.srv.Use(p, 1, cost)
}

// Stats returns cumulative traffic.
func (d *Disk) Stats() (readBytes, writeBytes int64) { return d.readBytes, d.writeBytes }

// BusyIntegral exposes the service resource's busy integral for utilization.
func (d *Disk) BusyIntegral() float64 { return d.srv.BusyIntegral() }

// Array is a set of spindles used round-robin per stream, modelling
// mapred.local.dir over multiple drives.
type Array struct {
	disks []*Disk
	next  int
}

// NewArray builds n identical disks.
func NewArray(e *sim.Engine, namePrefix string, spec Spec, n int) *Array {
	if n <= 0 {
		panic("disksim: array needs at least one disk")
	}
	a := &Array{}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, NewDisk(e, fmt.Sprintf("%s-d%d", namePrefix, i), spec))
	}
	return a
}

// Pick returns the next spindle round-robin. Callers keep the returned disk
// for the lifetime of one file/stream so a spill's writes and later reads
// land on the same spindle.
func (a *Array) Pick() *Disk {
	d := a.disks[a.next%len(a.disks)]
	a.next++
	return d
}

// Disks returns the spindles.
func (a *Array) Disks() []*Disk { return a.disks }

// Stats sums cumulative traffic over all spindles.
func (a *Array) Stats() (readBytes, writeBytes int64) {
	for _, d := range a.disks {
		r, w := d.Stats()
		readBytes += r
		writeBytes += w
	}
	return
}
