package disksim

import (
	"math"
	"testing"

	"mrmicro/internal/sim"
)

// fastDisk: 100 B/s write for easy arithmetic, no seek.
var fastDisk = Spec{ReadBandwidth: 200, WriteBandwidth: 100, Seek: 0}

func newStore(e *sim.Engine, memBytes int64, disks int) *Store {
	return NewStore(e, NewArray(e, "n", fastDisk, disks), memBytes)
}

func TestWriteBelowDirtyLimitIsMemorySpeed(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1) // dirty limit 200
	s.MemBandwidth = 100      // make mem time visible: 1 B == 10 ms
	var end sim.Time
	e.Go("w", func(p *sim.Proc) {
		s.Write(p, 100) // under the 200-byte dirty limit
		end = p.Now()
	})
	e.Run()
	if got := end.Seconds(); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("buffered write took %v, want 1s (memory speed)", got)
	}
}

func TestWriteThrottledAtDirtyLimit(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1) // dirty limit 200; disk drains 100 B/s
	s.MemBandwidth = 1e12     // memory time negligible
	var end sim.Time
	e.Go("w", func(p *sim.Proc) {
		s.Write(p, 1000) // far over the limit: most must drain at disk speed
		end = p.Now()
	})
	e.Run()
	// 1000 bytes through a 200-byte window: at least ~750 bytes must have
	// drained at 100 B/s before the final chunk is accepted.
	if end.Seconds() < 7.0 {
		t.Errorf("throttled write took %v, want >= ~7.5s", end.Seconds())
	}
}

func TestReadCachedVsUncached(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1) // cache 600 bytes
	s.MemBandwidth = 1e12
	var cachedEnd, coldEnd sim.Time
	e.Go("x", func(p *sim.Proc) {
		s.Write(p, 500) // live 500 <= cache 600: fully cached
		s.Sync(p)       // drain write-back so reads don't queue behind it
		t0 := p.Now()
		s.Read(p, 200)
		cachedEnd = p.Now() - t0
		s.Write(p, 1500) // live now 2000 > cache: reads partially cold
		s.Sync(p)
		t1 := p.Now()
		s.Read(p, 200)
		coldEnd = p.Now() - t1
	})
	e.Run()
	if cachedEnd.Seconds() > 0.01 {
		t.Errorf("cached read took %v, want ~0", cachedEnd)
	}
	// live=2000, cache=600 -> 30%% cached; 140 bytes at 200 B/s = 0.7s.
	if coldEnd.Seconds() < 0.5 {
		t.Errorf("cold read took %v, want >= 0.5s", coldEnd)
	}
}

func TestDeleteCancelsDirtyWriteback(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 10000, 1) // dirty limit 2000
	s.MemBandwidth = 1e12
	e.Go("x", func(p *sim.Proc) {
		s.Write(p, 1000) // all dirty, nothing flushed yet (first chunk may be in flight)
		s.Delete(1000)   // file dies in cache
	})
	end := e.Run()
	// Without cancellation the drain would take ~10s; with it, only the
	// in-flight chunk (<=64MB chunking means all 1000B in one chunk...) —
	// at 100 B/s: full drain 10s, cancel leaves <= one claimed chunk.
	if end.Seconds() > 10.5 {
		t.Errorf("delete did not cancel write-back: sim ended at %v", end)
	}
	if s.Live() != 0 {
		t.Errorf("live = %d after delete", s.Live())
	}
}

func TestSyncWaitsForDrain(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1) // limit 200
	s.MemBandwidth = 1e12
	var synced sim.Time
	e.Go("x", func(p *sim.Proc) {
		s.Write(p, 150)
		s.Sync(p)
		synced = p.Now()
	})
	e.Run()
	// 150 bytes at 100 B/s = 1.5 s of write-back before Sync returns.
	if synced.Seconds() < 1.4 {
		t.Errorf("sync returned at %v, want >= 1.5s", synced)
	}
}

func TestParallelWritebackUsesAllSpindles(t *testing.T) {
	run := func(disks int) float64 {
		e := sim.NewEngine()
		s := newStore(e, 1000, disks) // limit 200
		s.MemBandwidth = 1e12
		var end sim.Time
		e.Go("w", func(p *sim.Proc) {
			s.Write(p, 2000)
			s.Sync(p)
			end = p.Now()
		})
		e.Run()
		return end.Seconds()
	}
	one, two := run(1), run(2)
	if two >= one*0.75 {
		t.Errorf("2 spindles (%vs) should drain much faster than 1 (%vs)", two, one)
	}
}

func TestDeleteClampsAtZero(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1)
	s.Delete(500) // nothing live
	if s.Live() != 0 || s.Dirty() != 0 {
		t.Error("delete on empty store corrupted counters")
	}
	s.Delete(0)
	s.Delete(-5)
	if s.Live() != 0 {
		t.Error("non-positive delete changed state")
	}
}

func TestWriteZeroIsNoop(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1)
	e.Go("w", func(p *sim.Proc) {
		s.Write(p, 0)
		s.Read(p, 0)
	})
	end := e.Run()
	if end != 0 {
		t.Errorf("zero I/O advanced time to %v", end)
	}
}

func TestStoreDefaultSizing(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 24<<30, 2)
	if s.DirtyLimit != (24<<30)/5 {
		t.Errorf("dirty limit = %d, want 20%% of RAM", s.DirtyLimit)
	}
	if s.CacheBytes != (24<<30)*6/10 {
		t.Errorf("cache bytes = %d, want 60%% of RAM", s.CacheBytes)
	}
	if s.MemBandwidth != 3e9 {
		t.Errorf("mem bandwidth = %v", s.MemBandwidth)
	}
}

func TestConcurrentWritersThrottleFairly(t *testing.T) {
	e := sim.NewEngine()
	s := newStore(e, 1000, 1) // limit 200, drain 100 B/s
	s.MemBandwidth = 1e12
	ends := make([]sim.Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Go("w", func(p *sim.Proc) {
			s.Write(p, 500)
			ends[i] = p.Now()
		})
	}
	e.Run()
	// 1000 total bytes through a 200-byte dirty window: roughly
	// (1000 - window)/100 B/s ≈ 7-8 s of mandatory drain before the last
	// write's final chunk is accepted.
	last := ends[0]
	if ends[1] > last {
		last = ends[1]
	}
	if last.Seconds() < 6.5 {
		t.Errorf("writers finished at %v/%v, want >= ~7s of drain", ends[0], ends[1])
	}
}
