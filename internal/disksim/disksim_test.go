package disksim

import (
	"math"
	"testing"
	"time"

	"mrmicro/internal/sim"
)

var flat = Spec{ReadBandwidth: 100, WriteBandwidth: 50, Seek: 0}

func TestReadWriteTiming(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", flat)
	var afterRead, afterWrite sim.Time
	e.Go("io", func(p *sim.Proc) {
		d.Read(p, 200) // 2s
		afterRead = p.Now()
		d.Write(p, 200) // 4s
		afterWrite = p.Now()
	})
	e.Run()
	if afterRead.Seconds() != 2 {
		t.Errorf("read finished at %v, want 2s", afterRead.Seconds())
	}
	if afterWrite.Seconds() != 6 {
		t.Errorf("write finished at %v, want 6s", afterWrite.Seconds())
	}
}

func TestSeekCost(t *testing.T) {
	spec := Spec{ReadBandwidth: 100, WriteBandwidth: 100, Seek: sim.Duration(time.Second)}
	e := sim.NewEngine()
	d := NewDisk(e, "d", spec)
	var end sim.Time
	e.Go("io", func(p *sim.Proc) {
		d.Read(p, 100) // 1s seek + 1s transfer
		end = p.Now()
	})
	e.Run()
	if end.Seconds() != 2 {
		t.Errorf("end = %v, want 2s", end.Seconds())
	}
}

func TestFIFOContention(t *testing.T) {
	// Two concurrent 100-byte reads on one spindle serialize: 1s + 1s.
	e := sim.NewEngine()
	d := NewDisk(e, "d", flat)
	var ends []float64
	for i := 0; i < 2; i++ {
		e.Go("r", func(p *sim.Proc) {
			d.Read(p, 100)
			ends = append(ends, p.Now().Seconds())
		})
	}
	e.Run()
	if len(ends) != 2 || ends[0] != 1 || ends[1] != 2 {
		t.Errorf("ends = %v, want [1 2]", ends)
	}
}

func TestArrayRoundRobinParallelism(t *testing.T) {
	// Two disks: two concurrent streams run in parallel.
	e := sim.NewEngine()
	a := NewArray(e, "n0", flat, 2)
	var ends []float64
	for i := 0; i < 2; i++ {
		e.Go("r", func(p *sim.Proc) {
			a.Pick().Read(p, 100)
			ends = append(ends, p.Now().Seconds())
		})
	}
	e.Run()
	if len(ends) != 2 || ends[0] != 1 || ends[1] != 1 {
		t.Errorf("ends = %v, want [1 1]", ends)
	}
}

func TestStats(t *testing.T) {
	e := sim.NewEngine()
	a := NewArray(e, "n0", flat, 2)
	e.Go("io", func(p *sim.Proc) {
		a.Pick().Write(p, 300)
		a.Pick().Read(p, 100)
	})
	e.Run()
	r, w := a.Stats()
	if r != 100 || w != 300 {
		t.Errorf("stats = %d read %d write, want 100/300", r, w)
	}
}

func TestBusyIntegral(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", flat)
	e.Go("io", func(p *sim.Proc) { d.Read(p, 100) }) // busy 1s
	e.Run()
	if got := d.BusyIntegral(); math.Abs(got-float64(time.Second)) > 1 {
		t.Errorf("busy integral = %v, want ~1s", got)
	}
}

func TestHDDSpecRealistic(t *testing.T) {
	if HDD7200.ReadBandwidth < 50e6 || HDD7200.ReadBandwidth > 300e6 {
		t.Error("HDD read bandwidth outside plausible 7.2k rpm range")
	}
	if HDD7200.WriteBandwidth > HDD7200.ReadBandwidth {
		t.Error("HDD write bandwidth should not exceed read")
	}
	if HDD7200.Seek <= 0 {
		t.Error("HDD seek must be positive")
	}
}

func TestNegativeIOPanics(t *testing.T) {
	e := sim.NewEngine()
	d := NewDisk(e, "d", flat)
	e.Go("io", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative size")
			}
		}()
		d.Read(p, -1)
	})
	e.Run()
}
