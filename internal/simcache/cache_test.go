package simcache

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name string
	Vals []float64
}

func TestKeyStability(t *testing.T) {
	a1, err := Key(payload{Name: "x", Vals: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := Key(payload{Name: "x", Vals: []float64{1, 2}})
	b, _ := Key(payload{Name: "x", Vals: []float64{1, 3}})
	if a1 != a2 {
		t.Errorf("equal values hash differently: %s vs %s", a1, a2)
	}
	if a1 == b {
		t.Error("distinct values collide")
	}
	if len(a1) != 64 {
		t.Errorf("key length = %d, want 64 hex chars", len(a1))
	}
}

func TestMemoryHitMiss(t *testing.T) {
	c, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key(payload{Name: "p"})
	var got payload
	if c.Get(key, &got) {
		t.Fatal("hit on empty cache")
	}
	want := payload{Name: "p", Vals: []float64{3.5}}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, &got) {
		t.Fatal("miss after Put")
	}
	if got.Name != want.Name || len(got.Vals) != 1 || got.Vals[0] != 3.5 {
		t.Errorf("decoded %+v, want %+v", got, want)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("disk-entry")
	if err := c1.Put(key, payload{Name: "persisted"}); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory must see the entry.
	c2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c2.Get(key, &got) || got.Name != "persisted" {
		t.Fatalf("disk entry not replayed: ok=%v got=%+v", got.Name == "persisted", got)
	}
	hits, misses := c2.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d/%d, want 1 hit, 0 misses", hits, misses)
	}
}

func TestCorruptedDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	c1, _ := New(dir)
	key, _ := Key("to-corrupt")
	if err := c1.Put(key, payload{Name: "good", Vals: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, junk := range map[string][]byte{
		"truncated":   full[:len(full)/2],
		"garbage":     []byte("\x00\xffnot json"),
		"wrong-shape": []byte(`"a bare string"`),
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, junk, 0o644); err != nil {
				t.Fatal(err)
			}
			c2, _ := New(dir) // fresh cache: no in-memory copy to mask the damage
			var got payload
			if c2.Get(key, &got) {
				t.Fatalf("corrupted entry served as a hit: %+v", got)
			}
			if hits, misses := c2.Stats(); hits != 0 || misses != 1 {
				t.Errorf("stats = %d/%d, want 0 hits, 1 miss", hits, misses)
			}
			// The recompute path overwrites the bad entry.
			if err := c2.Put(key, payload{Name: "recomputed"}); err != nil {
				t.Fatal(err)
			}
			if !c2.Get(key, &got) || got.Name != "recomputed" {
				t.Errorf("overwrite after corruption not visible: %+v", got)
			}
		})
	}
}

func TestMemoryOnlyCacheWritesNoFiles(t *testing.T) {
	c, _ := New("")
	key, _ := Key("mem")
	if err := c.Put(key, payload{Name: "m"}); err != nil {
		t.Fatal(err)
	}
	if c.Dir() != "" {
		t.Errorf("Dir() = %q, want empty", c.Dir())
	}
}
