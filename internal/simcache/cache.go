// Package simcache memoizes simulation results by content hash.
//
// Every sweep point the experiment plane runs is a pure function of its
// configuration: the simulated engines are deterministic, so two points with
// the same normalized Config produce bit-identical results. The cache
// exploits that by keying each point on a SHA-256 hash of the canonical JSON
// encoding of everything the simulation reads (engine kind, network profile,
// job spec parameters, fault plan, cost model) plus a schema tag that callers
// bump whenever a code change alters what a cached value means.
//
// Lookups go to an in-memory map first and then, when the cache was opened
// with a directory, to one flat JSON file per key. Disk entries are written
// atomically (temp file + rename) and are re-verified on read: an entry that
// fails to decode — corrupted, truncated, or written by an older schema — is
// treated as a miss so the point is recomputed rather than poisoning results.
package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Key returns the cache key for v: the hex SHA-256 of its JSON encoding.
// encoding/json is canonical for cache purposes — struct fields encode in
// declaration order and map keys are sorted — so equal values always hash
// equal.
func Key(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("simcache: key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Cache is a two-level (memory, optional disk) memo table. It is safe for
// concurrent use by the sweep runner's workers.
type Cache struct {
	dir string // "" = memory only

	mu  sync.RWMutex
	mem map[string][]byte

	hits   atomic.Int64
	misses atomic.Int64
}

// New opens a cache. With dir == "" the cache is memory-only (results are
// shared within the process); otherwise entries also persist under dir, which
// is created if needed.
func New(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("simcache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string][]byte)}, nil
}

// Get looks key up and, on a hit, decodes the stored value into out (which
// must be a pointer). A disk entry that cannot be decoded counts as a miss:
// the caller recomputes and overwrites it.
func (c *Cache) Get(key string, out any) bool {
	c.mu.RLock()
	b, ok := c.mem[key]
	c.mu.RUnlock()
	if !ok && c.dir != "" {
		disk, err := os.ReadFile(c.path(key))
		if err == nil && json.Valid(disk) {
			b, ok = disk, true
			c.mu.Lock()
			c.mem[key] = disk
			c.mu.Unlock()
		}
	}
	if ok && json.Unmarshal(b, out) == nil {
		c.hits.Add(1)
		return true
	}
	c.misses.Add(1)
	return false
}

// Put stores v under key in memory and, when the cache is disk-backed, as a
// JSON file written atomically. Disk write failures are returned but leave
// the in-memory entry intact, so a read-only cache directory degrades to a
// per-process memo instead of failing the sweep.
func (c *Cache) Put(key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("simcache: put: %w", err)
	}
	c.mu.Lock()
	c.mem[key] = b
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("simcache: put: %w", err)
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: put: write %s: %v/%v", key, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: put: %w", err)
	}
	return nil
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Dir returns the backing directory ("" for memory-only caches).
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
