package sim

// Queue is an unbounded FIFO channel between simulated processes. Get blocks
// until an item is available; Put never blocks. Close wakes all blocked
// getters with ok=false once drained.
type Queue struct {
	eng     *Engine
	items   []interface{}
	getters []*Proc
	closed  bool
}

// NewQueue creates an empty queue on e.
func NewQueue(e *Engine) *Queue { return &Queue{eng: e} }

// Len returns the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends an item and wakes one blocked getter, if any.
func (q *Queue) Put(v interface{}) {
	if q.closed {
		panic("sim: put on closed queue")
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed. Buffered items are still delivered; once the
// queue drains, blocked and future Gets return ok=false.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.unpark()
	}
}

func (q *Queue) wakeOne() {
	if len(q.getters) > 0 {
		g := q.getters[0]
		q.getters = q.getters[1:]
		g.unpark()
	}
}

// Get removes and returns the head item, blocking p while the queue is empty.
// ok is false only when the queue is closed and drained.
func (q *Queue) Get(p *Proc) (interface{}, bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.getters = append(q.getters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Cond is a broadcast condition: processes Wait on it and are all released by
// Broadcast. Unlike sync.Cond there is no associated lock (the simulation is
// single-threaded); the usual pattern is `for !pred() { cond.Wait(p) }`.
type Cond struct {
	waiters []*Proc
}

// NewCond returns an empty condition.
func NewCond() *Cond { return &Cond{} }

// Wait parks p until the next Broadcast.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.park()
}

// Broadcast wakes every waiting process (in wait order).
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.unpark()
	}
}

// WaitGroup counts outstanding activities; Wait blocks until the count
// reaches zero.
type WaitGroup struct {
	n    int
	cond Cond
}

// Add increments the counter by delta (may be negative via Done).
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.cond.Broadcast()
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.n }

// Wait parks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.cond.Wait(p)
	}
}

// Future is a one-shot value that processes can wait for.
type Future struct {
	done bool
	val  interface{}
	cond Cond
}

// NewFuture returns an unresolved future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has been resolved.
func (f *Future) Done() bool { return f.done }

// Set resolves the future and wakes all waiters. Setting twice panics.
func (f *Future) Set(v interface{}) {
	if f.done {
		panic("sim: future set twice")
	}
	f.done = true
	f.val = v
	f.cond.Broadcast()
}

// Wait parks p until the future resolves, then returns its value.
func (f *Future) Wait(p *Proc) interface{} {
	for !f.done {
		f.cond.Wait(p)
	}
	return f.val
}
