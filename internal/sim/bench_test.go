package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEventQueue measures raw event throughput: a rolling window of
// pending events where every fired event reschedules itself, keeping the
// heap at a steady-state depth. The depth=48 case matches what a paper-scale
// microbenchmark sweep actually holds pending (~40-60 events); the deeper
// cases probe how the queue scales.
func BenchmarkEventQueue(b *testing.B) {
	for _, window := range []int{48, 512, 4096} {
		b.Run(fmt.Sprintf("depth%d", window), func(b *testing.B) {
			e := NewEngine()
			fired := 0
			budget := b.N
			var tick func()
			tick = func() {
				fired++
				if budget--; budget > 0 {
					// Vary the delay so heap order actually churns.
					e.Schedule(Time(1+fired%7), tick)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < window && i < b.N; i++ {
				e.Schedule(Time(i%13), tick)
			}
			e.Run()
			b.StopTimer()
			b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkSchedule measures the enqueue path alone (heap push + event
// bookkeeping), draining once at the end.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%97), fn)
	}
	e.Run()
}

// BenchmarkProcSwitch measures the full process context-switch protocol:
// one process sleeping in a tight loop, so every iteration is a
// yield-to-engine plus a dispatch-back.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine()
	e.Go("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Time(time.Nanosecond))
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "switches/sec")
}

// BenchmarkQueuePingPong measures two processes handing values through a
// Queue: the park/unpark path rather than timed sleeps.
func BenchmarkQueuePingPong(b *testing.B) {
	e := NewEngine()
	q := NewQueue(e)
	e.Go("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Yield()
		}
		q.Close()
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
