// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// An Engine advances a virtual clock through a totally ordered event queue.
// Simulated activities are written as ordinary Go functions running in
// processes (Proc); the engine runs exactly one process at a time and hands
// control back and forth through channels, so simulations are sequential and
// reproducible even though they are written in a natural blocking style.
//
// Events scheduled for the same instant fire in scheduling order (a strictly
// increasing sequence number breaks ties), which makes every run with the
// same inputs bit-for-bit identical.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// code can use time.Duration literals for intervals.
type Time int64

// Duration converts a time.Duration to the engine's tick unit.
func Duration(d time.Duration) Time { return Time(d) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the time as a duration from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// DurationOf converts seconds to a Time interval.
func DurationOf(seconds float64) Time { return Time(seconds * float64(time.Second)) }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator instance. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     Time
	seq     int64
	events  eventHeap
	yielded chan struct{}
	nprocs  int // live processes (for leak diagnostics)
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at now+d. fn runs in event context: it must
// not block (use Go for blocking activities). Negative delays are treated as
// zero.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.at(e.now+d, fn)
}

func (e *Engine) at(t Time, fn func()) {
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// Run processes events until none remain. It returns the final clock value.
// It panics if a process is still blocked when the event queue drains (a
// deadlock in the model), listing the stuck processes.
func (e *Engine) Run() Time {
	e.run(-1)
	if e.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at %v", e.nprocs, e.now))
	}
	return e.now
}

// RunUntil processes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.run(t)
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) run(limit Time) {
	for len(e.events) > 0 {
		if limit >= 0 && e.events[0].at > limit {
			return
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", ev.at, e.now))
		}
		e.now = ev.at
		ev.fn()
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
