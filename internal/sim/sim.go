// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel.
//
// An Engine advances a virtual clock through a totally ordered event queue.
// Simulated activities are written as ordinary Go functions running in
// processes (Proc); the engine runs exactly one process at a time and hands
// control back and forth through channels, so simulations are sequential and
// reproducible even though they are written in a natural blocking style.
//
// Events scheduled for the same instant fire in scheduling order (a strictly
// increasing sequence number breaks ties), which makes every run with the
// same inputs bit-for-bit identical.
package sim

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so model
// code can use time.Duration literals for intervals.
type Time int64

// Duration converts a time.Duration to the engine's tick unit.
func Duration(d time.Duration) Time { return Time(d) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the time as a duration from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// DurationOf converts seconds to a Time interval.
func DurationOf(seconds float64) Time { return Time(seconds * float64(time.Second)) }

// The event queue stores keys and payloads in parallel slices: eventKey is
// the 16-byte (time, sequence) ordering key the sift loops compare, eventVal
// the payload they carry along. Exactly one of fn and proc is set: fn for
// plain scheduled callbacks, proc for process resumptions (the hot path —
// storing the Proc directly avoids allocating a closure per context switch).
//
// Events are stored by value, so the only allocation the queue ever performs
// is amortized slice growth; the backing arrays are the event pool, reused
// across every Schedule/Run cycle of the engine. Keeping keys separate means
// the compare-heavy sift-down walks a dense array where four sibling keys
// span a single cache line.
type eventKey struct {
	at  Time
	seq int64
}

type eventVal struct {
	fn   func()
	proc *Proc
}

// keyLess orders events by (time, scheduling sequence). The strictly
// increasing seq makes the order total, so runs are bit-for-bit identical.
//
// The comparison is branchless: (at, seq) is treated as one unsigned 128-bit
// key (sign-biased so signed time order is preserved) and compared with a
// borrow chain. The heap's child scans are data-dependent, so a compare-
// and-branch mispredicts roughly half the time; borrow arithmetic plus a
// conditional move keeps the pipeline full.
func keyLess(a, b eventKey) bool {
	_, borrow := bits.Sub64(uint64(a.seq), uint64(b.seq), 0)
	_, borrow = bits.Sub64(uint64(a.at)^signBit, uint64(b.at)^signBit, borrow)
	return borrow != 0
}

const signBit = 1 << 63

// Engine is a discrete-event simulator instance. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now  Time
	seq  int64
	keys []eventKey // hand-rolled 4-ary min-heap; keys[i] pairs with vals[i]
	vals []eventVal
	// hole is true while the run loop is executing the root event's handler:
	// the root slot is logically vacant, and the handler's first push fills
	// it by sifting down from the root (the DES "replace-top" fast path —
	// most handlers schedule exactly one follow-up event, which fuses the
	// pop's sift-down and the push's sift-up into a single sift).
	hole  bool
	procs []*Proc // live processes, in spawn order (deadlock diagnostics)
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at now+d. fn runs in event context: it must
// not block (use Go for blocking activities). Negative delays are treated as
// zero.
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.at(e.now+d, fn)
}

func (e *Engine) at(t Time, fn func()) {
	e.seq++
	e.push(eventKey{at: t, seq: e.seq}, eventVal{fn: fn})
}

// scheduleProc enqueues a resumption of p at now+d without allocating a
// closure. It is the fast path behind Sleep, unpark and dispatch.
func (e *Engine) scheduleProc(d Time, p *Proc) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.push(eventKey{at: e.now + d, seq: e.seq}, eventVal{proc: p})
}

// push inserts an event, sifting it up with a hole (one copy per level
// instead of a swap). The heap is hand-rolled in the same style as kvbuf's
// merge heap: container/heap's interface dispatch and per-event heap
// allocation dominate the kernel's hot loop, and the queue only ever needs
// push and pop-min.
//
// The heap is 4-ary rather than binary: sift paths are half as deep, and the
// four children of a node sit in adjacent slots, so a pop's child scan walks
// one or two cache lines instead of chasing spread-out binary children. For
// event-queue workloads (push shallow, pop to the bottom) this trade is a
// consistent win.
func (e *Engine) push(k eventKey, v eventVal) {
	if e.hole {
		// Replace-top: the root was just consumed; the new event takes its
		// place with one sift-down instead of a full pop plus a sift-up.
		e.hole = false
		siftDown(e.keys, e.vals, k, v)
		return
	}
	ks := append(e.keys, k)
	vs := append(e.vals, v)
	i := len(ks) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !keyLess(k, ks[parent]) {
			break
		}
		ks[i], vs[i] = ks[parent], vs[parent]
		i = parent
	}
	ks[i], vs[i] = k, v
	e.keys, e.vals = ks, vs
}

// siftDown places (k, v) into the vacant root slot of the heap spanning
// ks/vs, restoring heap order.
func siftDown(ks []eventKey, vs []eventVal, k eventKey, v eventVal) {
	n := len(ks)
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if keyLess(ks[c], ks[best]) {
				best = c
			}
		}
		if !keyLess(ks[best], k) {
			break
		}
		ks[i], vs[i] = ks[best], vs[best]
		i = best
	}
	ks[i], vs[i] = k, v
}

// settle completes a pending root removal: if the handler did not push a
// replacement into the hole, the heap's last event moves up. The vacated
// tail slot is zeroed so popped closures and processes stay collectable
// while the backing arrays are retained as the pool.
func (e *Engine) settle() {
	if !e.hole {
		return
	}
	e.hole = false
	ks, vs := e.keys, e.vals
	n := len(ks) - 1
	lastK, lastV := ks[n], vs[n]
	vs[n] = eventVal{}
	ks, vs = ks[:n], vs[:n]
	e.keys, e.vals = ks, vs
	if n > 0 {
		siftDown(ks, vs, lastK, lastV)
	}
}

// Run processes events until none remain. It returns the final clock value.
// It panics if a process is still blocked when the event queue drains (a
// deadlock in the model), listing the stuck processes.
func (e *Engine) Run() Time {
	e.run(-1)
	if n := len(e.procs); n > 0 {
		names := make([]string, n)
		for i, p := range e.procs {
			names[i] = p.name
		}
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events at %v: %s",
			n, e.now, strings.Join(names, ", ")))
	}
	return e.now
}

// RunUntil processes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.run(t)
	if e.now < t {
		e.now = t
	}
}

func (e *Engine) run(limit Time) {
	for len(e.keys) > 0 {
		if limit >= 0 && e.keys[0].at > limit {
			return
		}
		k, v := e.keys[0], e.vals[0]
		if k.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled in the past: %v < %v", k.at, e.now))
		}
		e.now = k.at
		e.hole = true
		if v.proc != nil {
			v.proc.dispatch()
		} else {
			v.fn()
		}
		e.settle()
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int {
	n := len(e.keys)
	if e.hole {
		n--
	}
	return n
}

// addProc registers p for deadlock diagnostics.
func (e *Engine) addProc(p *Proc) { e.procs = append(e.procs, p) }

// removeProc drops p, preserving spawn order for deterministic messages.
func (e *Engine) removeProc(p *Proc) {
	for i, q := range e.procs {
		if q == p {
			e.procs = append(e.procs[:i], e.procs[i+1:]...)
			return
		}
	}
}
