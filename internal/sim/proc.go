package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time by the engine. All Proc methods must be called from the
// process's own goroutine.
//
// Control transfer uses a single unbuffered channel per process. The engine
// and the process strictly alternate — exactly one of them runs at a time —
// so the same channel safely carries both directions: the engine sends to
// resume the process, the process sends to yield back. That is one handoff
// per direction, with no shared yield channel contended across processes.
type Proc struct {
	eng    *Engine
	name   string
	gate   chan struct{}
	parked bool
	dead   bool
}

// Go starts a new process running fn. The process begins executing at the
// current virtual time (after already-queued events for this instant).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, gate: make(chan struct{})}
	e.addProc(p)
	go func() {
		<-p.gate
		fn(p)
		p.dead = true
		e.removeProc(p)
		p.gate <- struct{}{}
	}()
	e.scheduleProc(0, p)
	return p
}

// dispatch hands control to the process and waits until it yields back.
// Called from event context only.
func (p *Proc) dispatch() {
	p.gate <- struct{}{}
	<-p.gate
}

// park suspends the process until some other activity unparks it.
func (p *Proc) park() {
	p.parked = true
	p.gate <- struct{}{}
	<-p.gate
}

// unpark schedules the process to resume at the current virtual time.
// Safe to call from event context or from another process.
func (p *Proc) unpark() {
	if !p.parked {
		panic(fmt.Sprintf("sim: unpark of non-parked process %q", p.name))
	}
	p.parked = false
	p.eng.scheduleProc(0, p)
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d virtual nanoseconds. Negative durations
// sleep zero time but still yield, so same-instant events queued before us
// run in deterministic order.
func (p *Proc) Sleep(d Time) {
	p.eng.scheduleProc(d, p)
	p.gate <- struct{}{}
	<-p.gate
}

// Yield gives other same-instant events a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }
