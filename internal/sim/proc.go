package sim

import "fmt"

// Proc is a simulated process: a goroutine whose execution is interleaved
// with virtual time by the engine. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked bool
	dead   bool
}

// Go starts a new process running fn. The process begins executing at the
// current virtual time (after already-queued events for this instant).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	e.Schedule(0, func() {
		go func() {
			<-p.resume
			fn(p)
			p.dead = true
			e.nprocs--
			e.yielded <- struct{}{}
		}()
		p.dispatch()
	})
	return p
}

// dispatch hands control to the process and waits until it yields back.
// Called from event context only.
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.eng.yielded
}

// park suspends the process until some other activity unparks it.
func (p *Proc) park() {
	p.parked = true
	p.eng.yielded <- struct{}{}
	<-p.resume
}

// unpark schedules the process to resume at the current virtual time.
// Safe to call from event context or from another process.
func (p *Proc) unpark() {
	if !p.parked {
		panic(fmt.Sprintf("sim: unpark of non-parked process %q", p.name))
	}
	p.parked = false
	p.eng.Schedule(0, p.dispatch)
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Sleep suspends the process for d virtual nanoseconds.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Still yield so that same-instant events queued before us run in
		// deterministic order.
		d = 0
	}
	p.eng.Schedule(d, func() { p.dispatch() })
	p.eng.yielded <- struct{}{}
	<-p.resume
}

// Yield gives other same-instant events a chance to run.
func (p *Proc) Yield() { p.Sleep(0) }
