package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(Duration(2*time.Second), func() { got = append(got, "c") })
	e.Schedule(Duration(1*time.Second), func() { got = append(got, "a") })
	e.Schedule(Duration(1*time.Second), func() { got = append(got, "b") })
	end := e.Run()
	if want := "[a b c]"; fmt.Sprint(got) != want {
		t.Errorf("order = %v, want %v", got, want)
	}
	if end != Duration(2*time.Second) {
		t.Errorf("end = %v, want 2s", end)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(0, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestNestedSchedule(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(Duration(time.Second), func() {
		fired = append(fired, e.Now())
		e.Schedule(Duration(time.Second), func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != Duration(time.Second) || fired[1] != Duration(2*time.Second) {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(time.Duration(i)*time.Second), func() { n++ })
	}
	e.RunUntil(Duration(5 * time.Second))
	if n != 5 {
		t.Errorf("events fired by t=5s: %d, want 5", n)
	}
	if e.Now() != Duration(5*time.Second) {
		t.Errorf("now = %v, want 5s", e.Now())
	}
	e.Run()
	if n != 10 {
		t.Errorf("total events = %d, want 10", n)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(Duration(3 * time.Second))
		wake = p.Now()
	})
	e.Run()
	if wake != Duration(3*time.Second) {
		t.Errorf("woke at %v, want 3s", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var got []string
	step := func(name string, d time.Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(Duration(d))
			got = append(got, fmt.Sprintf("%s@%v", name, p.Now().Seconds()))
		})
	}
	step("b", 2*time.Second)
	step("a", 1*time.Second)
	step("c", 3*time.Second)
	e.Run()
	want := "[a@1 b@2 c@3]"
	if fmt.Sprint(got) != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "slots", 2)
	var order []string
	worker := func(name string, hold time.Duration) {
		e.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, "start:"+name)
			p.Sleep(Duration(hold))
			r.Release(1)
			order = append(order, "end:"+name)
		})
	}
	worker("w1", 10*time.Second)
	worker("w2", 10*time.Second)
	worker("w3", 10*time.Second) // must wait for a slot
	e.Run()
	// w3's wake is queued behind w2's already-scheduled same-instant event,
	// so both ends at t=10s log before w3 starts.
	want := "[start:w1 start:w2 end:w1 end:w2 start:w3 end:w3]"
	if fmt.Sprint(order) != want {
		t.Errorf("order = %v, want %v", order, want)
	}
	if e.Now() != Duration(20*time.Second) {
		t.Errorf("end = %v, want 20s", e.Now())
	}
}

func TestResourceLargeRequestBlocksLater(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "mem", 4)
	var order []string
	e.Go("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(Duration(10 * time.Second))
		r.Release(3)
	})
	e.Go("big", func(p *Proc) {
		p.Sleep(Duration(time.Second)) // arrive second
		r.Acquire(p, 4)
		order = append(order, "big")
		r.Release(4)
	})
	e.Go("small", func(p *Proc) {
		p.Sleep(Duration(2 * time.Second)) // arrive third; 1 unit IS free, but FIFO forbids overtaking
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	if want := "[big small]"; fmt.Sprint(order) != want {
		t.Errorf("order = %v, want %v (no overtaking)", order, want)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	if !r.TryAcquire(1) {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("second TryAcquire succeeded with no capacity")
	}
	r.Release(1)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 2)
	e.Go("u", func(p *Proc) {
		r.Use(p, 1, Duration(10*time.Second))
	})
	e.Run()
	// 1 unit busy for 10s of a 2-capacity resource => integral = 10e9 unit-ns.
	got := r.BusyIntegral()
	want := 10 * float64(time.Second)
	if got != want {
		t.Errorf("busy integral = %v, want %v", got, want)
	}
}

func TestQueueBlockingGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Duration(time.Second))
			q.Put(i)
		}
		q.Close()
	})
	e.Run()
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Errorf("got %v", got)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e)
	counts := map[string]int{}
	for _, name := range []string{"c1", "c2"} {
		name := name
		e.Go(name, func(p *Proc) {
			for {
				_, ok := q.Get(p)
				if !ok {
					return
				}
				counts[name]++
			}
		})
	}
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Duration(time.Second))
			q.Put(i)
		}
		q.Close()
	})
	e.Run()
	if counts["c1"]+counts["c2"] != 10 {
		t.Errorf("counts = %v, want total 10", counts)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	doneAt := Time(-1)
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(Duration(time.Duration(i) * time.Second))
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != Duration(3*time.Second) {
		t.Errorf("waiter released at %v, want 3s", doneAt)
	}
}

func TestFuture(t *testing.T) {
	e := NewEngine()
	f := NewFuture()
	var got interface{}
	var at Time
	e.Go("waiter", func(p *Proc) {
		got = f.Wait(p)
		at = p.Now()
	})
	e.Go("setter", func(p *Proc) {
		p.Sleep(Duration(5 * time.Second))
		f.Set("value")
	})
	e.Run()
	if got != "value" || at != Duration(5*time.Second) {
		t.Errorf("got %v at %v", got, at)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEngine()
	c := NewCond()
	released := 0
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			c.Wait(p)
			released++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Sleep(Duration(time.Second))
		c.Broadcast()
	})
	e.Run()
	if released != 4 {
		t.Errorf("released = %d, want 4", released)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		r := NewResource(e, "res", 3)
		q := NewQueue(e)
		var log []string
		for i := 0; i < 8; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Duration(time.Duration(i%3) * time.Second))
				r.Acquire(p, 1)
				p.Sleep(Duration(time.Duration(1+i%2) * time.Second))
				r.Release(1)
				q.Put(i)
				log = append(log, fmt.Sprintf("%d@%v", i, p.Now()))
			})
		}
		e.Go("drain", func(p *Proc) {
			for n := 0; n < 8; n++ {
				v, _ := q.Get(p)
				log = append(log, fmt.Sprintf("got%v", v))
			}
		})
		e.Run()
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("runs differ:\n%v\n%v", a, b)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		// The panic must name the stuck processes, not just count them —
		// that is what makes a hung sweep point debuggable.
		msg := fmt.Sprint(r)
		for _, want := range []string{"2 process(es)", "stuck-a", "stuck-b"} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock panic %q missing %q", msg, want)
			}
		}
	}()
	e := NewEngine()
	f := NewFuture()
	e.Go("stuck-a", func(p *Proc) { f.Wait(p) })
	e.Go("stuck-b", func(p *Proc) { f.Wait(p) })
	e.Run()
}

func TestEventInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for event in the past")
		}
	}()
	e := NewEngine()
	e.Schedule(Duration(time.Second), func() {
		e.at(0, func() {}) // directly forge a past event
	})
	e.Run()
}

func TestTimeHelpers(t *testing.T) {
	if DurationOf(1.5) != Duration(1500*time.Millisecond) {
		t.Error("DurationOf mismatch")
	}
	if got := Duration(2500 * time.Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v", got)
	}
	if Duration(time.Second).String() != "1s" {
		t.Errorf("String = %q", Duration(time.Second).String())
	}
}
