package sim

import "fmt"

// Resource is a counting semaphore with FIFO admission, used to model finite
// capacity such as CPU cores, task slots, or memory. It also integrates
// capacity-in-use over time so callers can derive utilization (busy fraction)
// between two sampling points.
type Resource struct {
	eng      *Engine
	name     string
	capacity int64
	inUse    int64

	waiters []*resWaiter

	lastChange Time
	busyNs     float64 // integral of inUse over time, in unit*ns
}

type resWaiter struct {
	p *Proc
	n int64
}

// NewResource creates a resource with the given capacity (> 0).
func NewResource(e *Engine, name string, capacity int64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive, got %d", name, capacity))
	}
	return &Resource{eng: e, name: name, capacity: capacity, lastChange: e.now}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the currently held amount.
func (r *Resource) InUse() int64 { return r.inUse }

// QueueLen returns the number of processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) accumulate() {
	now := r.eng.now
	r.busyNs += float64(r.inUse) * float64(now-r.lastChange)
	r.lastChange = now
}

// BusyIntegral returns the integral of capacity-in-use over time in
// unit-nanoseconds since the start of the simulation. Utilization over a
// window is (delta integral) / (capacity * window).
func (r *Resource) BusyIntegral() float64 {
	r.accumulate()
	return r.busyNs
}

// Acquire blocks p until n units are available and takes them. Requests are
// granted strictly in FIFO order: a large request at the head of the queue
// blocks later small ones (no starvation).
func (r *Resource) Acquire(p *Proc, n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("sim: acquire of %d from %q", n, r.name))
	}
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire of %d exceeds capacity %d of %q", n, r.capacity, r.name))
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.accumulate()
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, &resWaiter{p: p, n: n})
	p.park()
}

// TryAcquire takes n units if immediately available (and no earlier waiter
// is queued), reporting whether it succeeded.
func (r *Resource) TryAcquire(n int64) bool {
	if n <= 0 || n > r.capacity {
		return false
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.accumulate()
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and wakes as many queued waiters as now fit.
func (r *Resource) Release(n int64) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: release of %d with %d in use on %q", n, r.inUse, r.name))
	}
	r.accumulate()
	r.inUse -= n
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		w.p.unpark()
	}
}

// Use acquires n units, runs the process for d virtual time, and releases.
// It is the common "compute for d holding one core" idiom.
func (r *Resource) Use(p *Proc, n int64, d Time) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}
