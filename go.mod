module mrmicro

go 1.24
