// Package mrmicro_test is the paper-reproduction benchmark harness: one
// testing.B benchmark per figure of the evaluation section. Each benchmark
// regenerates its figure's sweep on the simulated testbeds and reports the
// series as custom metrics (sim-seconds per configuration, improvement
// percentages), so `go test -bench=. -benchmem` reproduces the paper's
// numbers end to end. Wall-clock ns/op measures the simulator itself.
//
// Run with -short for reduced sweep sizes.
package mrmicro_test

import (
	"fmt"
	"strings"
	"testing"

	"mrmicro/internal/figures"
	"mrmicro/internal/metrics"
	"mrmicro/internal/microbench"
	"mrmicro/internal/netsim"
)

// metricName compresses a series name into a metric suffix.
func metricName(s string) string {
	s = strings.NewReplacer("(", "", ")", "", "/", "_", " ", "", "-", "_").Replace(s)
	return s
}

// benchFigure regenerates one figure per iteration and reports its series.
func benchFigure(b *testing.B, id string) {
	opts := figures.Options{Quick: testing.Short()}
	fig, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("figure %s not registered", id)
	}
	var out *figures.Output
	for i := 0; i < b.N; i++ {
		var err error
		out, err = fig.Generate(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the mean simulated job time of every series, paper-style.
	for _, t := range out.Tables {
		for _, s := range t.Series() {
			b.ReportMetric(metrics.Mean(s.Values), "simsec_"+metricName(s.Name))
		}
	}
	for _, tl := range out.Timelines {
		if strings.Contains(tl.Title, "network") {
			b.ReportMetric(tl.Peak(), "peakMBps_"+metricName(tl.Title[strings.LastIndex(tl.Title, " ")+1:]))
		}
	}
}

// Fig. 2: MRv1 job execution time by distribution pattern and interconnect.
func BenchmarkFig2a_MRAvg_MRv1(b *testing.B)  { benchFigure(b, "fig2a") }
func BenchmarkFig2b_MRRand_MRv1(b *testing.B) { benchFigure(b, "fig2b") }
func BenchmarkFig2c_MRSkew_MRv1(b *testing.B) { benchFigure(b, "fig2c") }

// Fig. 3: the same patterns on YARN with doubled cluster and task counts.
func BenchmarkFig3a_MRAvg_YARN(b *testing.B)  { benchFigure(b, "fig3a") }
func BenchmarkFig3b_MRRand_YARN(b *testing.B) { benchFigure(b, "fig3b") }
func BenchmarkFig3c_MRSkew_YARN(b *testing.B) { benchFigure(b, "fig3c") }

// Fig. 4: key/value size sensitivity (MR-AVG).
func BenchmarkFig4a_KV10B(b *testing.B)  { benchFigure(b, "fig4a") }
func BenchmarkFig4b_KV1KB(b *testing.B)  { benchFigure(b, "fig4b") }
func BenchmarkFig4c_KV10KB(b *testing.B) { benchFigure(b, "fig4c") }

// Fig. 5: map/reduce task-count sensitivity on 10GigE vs IPoIB QDR.
func BenchmarkFig5_TaskCounts(b *testing.B) { benchFigure(b, "fig5") }

// Fig. 6: data-type sensitivity (BytesWritable vs Text) up to 64 GB.
func BenchmarkFig6a_BytesWritable(b *testing.B) { benchFigure(b, "fig6a") }
func BenchmarkFig6b_Text(b *testing.B)          { benchFigure(b, "fig6b") }

// Fig. 7: resource utilization timelines (CPU %, network MB/s).
func BenchmarkFig7_ResourceUtilization(b *testing.B) { benchFigure(b, "fig7") }

// Fig. 8: the RDMA-enhanced MapReduce case study on Cluster B.
func BenchmarkFig8a_RDMA8Slaves(b *testing.B)  { benchFigure(b, "fig8a") }
func BenchmarkFig8b_RDMA16Slaves(b *testing.B) { benchFigure(b, "fig8b") }

// Summary: the conclusion's headline improvement percentages.
func BenchmarkSummaryTable(b *testing.B) { benchFigure(b, "summary") }

// BenchmarkSuiteOverhead measures the harness itself: spec construction for
// one 16 GB MR-RAND job (real partitioner over ~8M records) — the cost of
// preparing a benchmark, not running it.
func BenchmarkSuiteOverhead_SpecBuild(b *testing.B) {
	cfg := microbench.Config{
		Pattern: microbench.MRRand,
		Slaves:  4, NumMaps: 16, NumReduces: 8,
		KeySize: 1024, ValueSize: 1024,
	}.WithShuffleSize(16 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := microbench.BuildSpec(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches: design choices DESIGN.md calls out.

// BenchmarkAblation_SlowstartFraction sweeps the reducer slow-start point:
// late reducers expose the whole shuffle after the map phase.
func BenchmarkAblation_SlowstartFraction(b *testing.B) {
	for _, slowstart := range []float64{0.05, 0.5, 1.0} {
		b.Run(fmt.Sprintf("slowstart_%v", slowstart), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := microbench.Config{
					Pattern: microbench.MRAvg,
					Slaves:  4, NumMaps: 16, NumReduces: 8,
					KeySize: 1024, ValueSize: 1024,
					Network: netsim.OneGigE.Name,
					ExtraConf: map[string]string{
						"mapreduce.job.reduce.slowstart.completedmaps": fmt.Sprint(slowstart),
					},
				}.WithShuffleSize(8 << 30)
				res, err := microbench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.JobSeconds()
			}
			b.ReportMetric(last, "simsec")
		})
	}
}

// BenchmarkAblation_RDMAMergeOverlap isolates the pipelined-merge share of
// the MRoIB gain from the kernel-bypass share.
func BenchmarkAblation_RDMAMergeOverlap(b *testing.B) {
	for _, rdma := range []bool{false, true} {
		b.Run(fmt.Sprintf("rdmaShuffle_%v", rdma), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := microbench.Config{
					Pattern: microbench.MRAvg,
					Cluster: microbench.ClusterB,
					Slaves:  8, NumMaps: 32, NumReduces: 16,
					KeySize: 1024, ValueSize: 1024,
					Network:     netsim.RDMAFDR56.Name, // same wire both ways
					RDMAShuffle: rdma,
				}.WithShuffleSize(32 << 30)
				res, err := microbench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.JobSeconds()
			}
			b.ReportMetric(last, "simsec")
		})
	}
}

// BenchmarkAblation_IOSortMB sweeps the map-side sort buffer: small buffers
// multiply spills and merge passes.
func BenchmarkAblation_IOSortMB(b *testing.B) {
	for _, mb := range []int{50, 100, 400} {
		b.Run(fmt.Sprintf("io.sort.mb_%d", mb), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := microbench.Config{
					Pattern: microbench.MRAvg,
					Slaves:  4, NumMaps: 16, NumReduces: 8,
					KeySize: 1024, ValueSize: 1024,
					Network:   netsim.IPoIBQDR32.Name,
					ExtraConf: map[string]string{"mapreduce.task.io.sort.mb": fmt.Sprint(mb)},
				}.WithShuffleSize(8 << 30)
				res, err := microbench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.JobSeconds()
			}
			b.ReportMetric(last, "simsec")
		})
	}
}

// BenchmarkAblation_Compression sweeps intermediate compression across
// interconnects: the CPU-vs-wire-bytes crossover (helps 1GigE, washes out
// or hurts on IPoIB QDR).
func BenchmarkAblation_Compression(b *testing.B) {
	for _, net := range []string{netsim.OneGigE.Name, netsim.IPoIBQDR32.Name} {
		for _, compress := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s_compress_%v", metricName(net), compress), func(b *testing.B) {
				var last float64
				for i := 0; i < b.N; i++ {
					cfg := microbench.Config{
						Pattern: microbench.MRAvg,
						Slaves:  4, NumMaps: 16, NumReduces: 8,
						KeySize: 1024, ValueSize: 1024,
						Network: net,
						ExtraConf: map[string]string{
							"mapreduce.map.output.compress": fmt.Sprint(compress),
						},
					}.WithShuffleSize(16 << 30)
					res, err := microbench.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = res.JobSeconds()
				}
				b.ReportMetric(last, "simsec")
			})
		}
	}
}
